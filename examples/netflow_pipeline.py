#!/usr/bin/env python3
"""Running the detection pipeline on NetFlow instead of DNS/proxy logs.

Section II-C of the paper claims its infection patterns are visible in
"various types of network data (e.g., NetFlow, DNS logs, web proxies
logs)".  Flow records carry no domain names, so the trick -- used by
real enterprise deployments -- is to join flows against *passive DNS*:
the (address -> domain) bindings observed in the site's own DNS
traffic.  After the join, the exact same rare-destination + automation
+ belief-propagation pipeline runs unchanged.

Run:  python examples/netflow_pipeline.py
"""

from repro.core.beliefprop import belief_propagation
from repro.core.scoring import AdditiveSimilarityScorer, multi_host_beacon_heuristic
from repro.logs import PassiveDnsMap, normalize_netflow_records
from repro.profiling import (
    DailyTraffic,
    DestinationHistory,
    extract_rare_domains,
    rare_domains_by_host,
)
from repro.synthetic import LanlConfig, generate_lanl_dataset
from repro.timing import AutomationDetector


def main() -> None:
    config = LanlConfig(seed=11, n_hosts=80, bootstrap_days=3,
                        popular_domains=50, churn_domains_per_day=10)
    print("generating synthetic world with paired DNS + NetFlow ...")
    dataset = generate_lanl_dataset(config)
    march_date = 5
    truth = dataset.campaign_for_date(march_date)

    # 1. Build the passive-DNS view from the day's DNS answers.
    pdns = PassiveDnsMap(fold_level=3)
    dns_records = dataset.day_records(march_date)
    pdns.observe_all(dns_records)
    print(f"passive DNS: {len(pdns)} addresses mapped from "
          f"{len(dns_records)} DNS records")

    # 2. Join the flow export against it.
    flows = dataset.day_netflow(march_date)
    connections = list(normalize_netflow_records(flows, pdns))
    print(f"flows: {len(flows)} exported, {len(connections)} joined to domains")

    # 3. The standard pipeline, unchanged.
    history = DestinationHistory()
    history.bootstrap(dataset.bootstrap_domains)
    day = config.bootstrap_days + (march_date - 1)
    traffic = DailyTraffic(day)
    traffic.ingest(connections)
    traffic.finalize()
    rare = extract_rare_domains(traffic, history)
    print(f"rare destinations: {len(rare)}")

    detector = AutomationDetector()
    verdicts = detector.automated_pairs(
        (key, times)
        for key, times in sorted(traffic.timestamps.items())
        if key[1] in rare
    )
    cc = {
        domain for domain in {v.domain for v in verdicts}
        if multi_host_beacon_heuristic(domain, verdicts, traffic)
    }
    print(f"C&C candidates from flow timing: {sorted(cc)}")

    scorer = AdditiveSimilarityScorer()
    seed_hosts = set(truth.hint_hosts)
    result = belief_propagation(
        seed_hosts,
        set(),
        dom_host={d: set(traffic.hosts_by_domain.get(d, ())) for d in rare},
        host_rdom=rare_domains_by_host(traffic, rare),
        detect_cc=lambda dom: dom in cc,
        similarity_score=lambda dom, mal: scorer.score(dom, mal, traffic),
    )

    print("\ndetections from NetFlow (vs ground truth):")
    for domain in result.detected_domains:
        mark = "TRUE" if domain in truth.malicious_domains else "FALSE"
        print(f"  {domain:<30} {mark} POSITIVE")
    missed = set(truth.malicious_domains) - set(result.detected_domains)
    print(f"missed: {sorted(missed) if missed else 'none'}")


if __name__ == "__main__":
    main()
