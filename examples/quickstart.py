#!/usr/bin/env python3
"""Quickstart: detect one simulated campaign from a single hint host.

Generates a small synthetic LANL-style world, takes the March 2nd
campaign's hint host (the starting point a SOC analyst would have), and
runs belief propagation to recover the rest of the campaign --
C&C domain first, then the delivery domains by similarity.

Run:  python examples/quickstart.py
"""

from repro.eval import LanlChallengeSolver
from repro.synthetic import LanlConfig, generate_lanl_dataset


def main() -> None:
    config = LanlConfig(
        seed=7,
        n_hosts=80,
        bootstrap_days=4,
        popular_domains=50,
        churn_domains_per_day=10,
    )
    print("generating synthetic LANL world ...")
    dataset = generate_lanl_dataset(config)

    solver = LanlChallengeSolver(dataset)
    truth = dataset.campaign_for_date(2)
    print(f"hint host: {truth.hint_hosts[0]}")
    print(f"(ground truth: {len(truth.malicious_domains)} malicious domains)\n")

    outcome = solver.solve_day(2)

    print("belief propagation trace:")
    for step in outcome.bp_result.trace:
        if step.cc_detected:
            print(f"  iter {step.iteration}: C&C detected -> {step.cc_detected}")
        elif step.labeled:
            print(
                f"  iter {step.iteration}: labeled {step.labeled} "
                f"(score {step.top_score:.2f})"
            )
        else:
            print(
                f"  iter {step.iteration}: stop "
                f"(top score {step.top_score:.2f} below threshold)"
            )

    print("\ndetected domains (suspiciousness order):")
    for domain in outcome.detected:
        mark = "TRUE POSITIVE" if domain in truth.malicious_domains else "false positive"
        print(f"  {domain:<30} {mark}")

    counts = outcome.counts
    print(
        f"\nresult: {counts.true_positives} TP, {counts.false_positives} FP, "
        f"{counts.false_negatives} FN"
    )
    print("\ncommunity graph:")
    print(outcome.bp_result.graph.ascii_render())


if __name__ == "__main__":
    main()
