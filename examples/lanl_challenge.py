#!/usr/bin/env python3
"""Solve the full LANL APT-discovery challenge (Section V).

Replays all 20 simulated campaigns across the four hint cases of
Table I, printing a per-day ledger and the Table III summary.

Run:  python examples/lanl_challenge.py
"""

from repro.eval import LanlChallengeSolver, render_table
from repro.synthetic import TRAINING_DATES, generate_lanl_dataset
from repro.synthetic.lanl import LanlConfig


def main() -> None:
    config = LanlConfig(seed=42, n_hosts=100, bootstrap_days=4,
                        popular_domains=60, churn_domains_per_day=12)
    print("generating synthetic LANL world (20 campaigns) ...")
    dataset = generate_lanl_dataset(config)
    solver = LanlChallengeSolver(dataset)

    print("solving day by day:\n")
    report = solver.solve_all()
    for outcome in report.outcomes:
        split = "train" if outcome.march_date in TRAINING_DATES else "test"
        counts = outcome.counts
        print(
            f"  3/{outcome.march_date:02d}  case {outcome.case}  [{split}]  "
            f"TP={counts.true_positives}  FP={counts.false_positives}  "
            f"FN={counts.false_negatives}"
        )

    rows = []
    for case in (1, 2, 3, 4):
        train = report.counts_for(case, training=True)
        test = report.counts_for(case, training=False)
        rows.append(
            (f"Case {case}",
             train.true_positives, test.true_positives,
             train.false_positives, test.false_positives,
             train.false_negatives, test.false_negatives)
        )
    train_total = report.totals(True)
    test_total = report.totals(False)
    rows.append(
        ("Total",
         train_total.true_positives, test_total.true_positives,
         train_total.false_positives, test_total.false_positives,
         train_total.false_negatives, test_total.false_negatives)
    )
    print()
    print(render_table(
        ("case", "TP(tr)", "TP(te)", "FP(tr)", "FP(te)", "FN(tr)", "FN(te)"),
        rows,
        title="Table III analogue -- results on the LANL challenge",
    ))
    overall = report.overall
    print(
        f"\noverall: TDR={overall.tdr:.2%}  FDR={overall.fdr:.2%}  "
        f"FNR={overall.fnr:.2%}"
    )
    print("paper:   TDR=98.33%  FDR=1.67%  FNR=6.25%")


if __name__ == "__main__":
    main()
