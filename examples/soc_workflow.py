#!/usr/bin/env python3
"""A SOC's daily workflow: train once, persist, detect daily, triage.

Simulates the deployment loop of Figure 1 end to end:

1. train the detector on the bootstrap month of proxy logs;
2. persist its state to JSON (the nightly restart boundary);
3. each operational day, restore the detector, run both modes, and
   produce the analyst-facing incident report;
4. triage the month's detections into campaign clusters.

Run:  python examples/soc_workflow.py
"""

import tempfile
from pathlib import Path

from repro.core.pipeline import _automated_hosts_by_domain
from repro.eval import build_incident, triage_report
from repro.state import load_detector, save_detector
from repro.synthetic import EnterpriseDatasetConfig, generate_enterprise_dataset


def main() -> None:
    config = EnterpriseDatasetConfig(
        seed=99, n_hosts=70, bootstrap_days=9, operation_days=5,
        quiet_days=3, n_campaigns=14,
    )
    print("generating enterprise world ...")
    dataset = generate_enterprise_dataset(config)
    virustotal = dataset.build_virustotal()
    ioc = dataset.build_ioc_list()

    # --- training, once ---------------------------------------------------
    from repro.core import EnterpriseDetector

    detector = EnterpriseDetector(whois=dataset.whois)
    report = detector.train(
        dataset.day_batches(0, config.bootstrap_days), virustotal
    )
    print(
        f"trained: {report.history_size} destinations profiled, "
        f"{report.automated_domain_samples} labeled automated domains, "
        f"{report.similarity_samples} similarity samples"
    )

    state_path = Path(tempfile.mkdtemp()) / "detector-state.json"
    save_detector(detector, state_path)
    print(f"state persisted to {state_path}\n")

    # --- daily operation ---------------------------------------------------
    month_detections: set[str] = set()
    ips_by_domain: dict[str, set[str]] = {}
    for day in range(config.bootstrap_days, config.total_days):
        # Each "morning" the service restarts from persisted state.
        daily = load_detector(state_path, whois=dataset.whois)
        daily.history = detector.history          # share the live profiles
        daily.ua_history = detector.ua_history
        daily.extractor.ua_history = detector.ua_history

        connections = dataset.day_connections(day)
        result = detector.process_day(
            day, connections, soc_seed_domains=ioc.seeds()
        )

        print(f"--- day {day}: {len(connections)} connections, "
              f"{len(result.rare_domains)} rare, "
              f"{len(result.cc_domains)} C&C alerts")
        for bp_name, bp in (("no-hint", result.no_hint),
                            ("SOC-hints", result.soc_hints)):
            if bp is None or not bp.detected_domains:
                continue
            traffic, _ = detector._aggregate_day(day, connections)
            incident = build_incident(
                bp, traffic,
                verdicts=result.automated_verdicts,
                whois=dataset.whois,
                virustotal=virustotal,
                when=(day + 1) * 86_400.0,
            )
            print(f"[{bp_name}] " + incident.render())
            month_detections.update(incident.domains)
            for evidence in incident.evidence:
                ips_by_domain.setdefault(
                    evidence.domain, set()
                ).update(evidence.resolved_ips)

    # --- end-of-month triage -----------------------------------------------
    if month_detections:
        print()
        print(triage_report(month_detections, ips_by_domain=ips_by_domain))
    truth = dataset.malicious_domains
    confirmed = month_detections & truth
    print(
        f"\nmonth summary: {len(month_detections)} detections, "
        f"{len(confirmed)} confirmed malicious, "
        f"{len(month_detections - truth)} false positives"
    )


if __name__ == "__main__":
    main()
