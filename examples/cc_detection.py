#!/usr/bin/env python3
"""Anatomy of the C&C detector: dynamic histograms vs. the baselines.

Shows, on controlled timing series, why the paper chose dynamic
histogram binning with Jeffrey divergence (Section IV-C):

* a clean 10-minute beacon -- every detector agrees;
* the same beacon with attacker jitter -- still detected;
* a beacon interrupted by one long outlier gap (laptop asleep) -- the
  standard-deviation baseline breaks, the dynamic histogram does not;
* human browsing -- everyone must say no.

Run:  python examples/cc_detection.py
"""

import random

from repro.timing import (
    AutocorrelationDetector,
    AutomationDetector,
    FftDetector,
    StaticBinDetector,
    StdDevDetector,
    histogram_from_timestamps,
)


def beacon(period=600.0, count=40, jitter=0.0, seed=0):
    rng = random.Random(seed)
    times, t = [], 0.0
    for _ in range(count):
        times.append(t)
        t += period + rng.uniform(-jitter, jitter)
    return times


def browsing(count=40, seed=1):
    rng = random.Random(seed)
    times, t = [], 0.0
    for _ in range(count):
        t += rng.expovariate(1.0 / 300.0)
        times.append(t)
    return times


def with_outlier(times, gap=25_000.0):
    half = len(times) // 2
    return times[:half] + [t + gap for t in times[half:]]


def main() -> None:
    detectors = {
        "dynamic histogram (paper)": AutomationDetector(),
        "static bins (ablation)": StaticBinDetector(),
        "std-dev (abandoned)": StdDevDetector(),
        "FFT (BotFinder-like)": FftDetector(),
        "autocorr (BotSniffer-like)": AutocorrelationDetector(),
    }
    scenarios = {
        "clean 10-min beacon": beacon(),
        "beacon, +/-3 s jitter": beacon(jitter=3.0),
        "beacon with outlier gap": with_outlier(beacon(count=40)),
        "human browsing": browsing(),
    }

    header = f"{'scenario':<26}" + "".join(f"{name:>28}" for name in detectors)
    print(header)
    print("-" * len(header))
    for scenario_name, times in scenarios.items():
        cells = []
        for detector in detectors.values():
            verdict = detector.test_series("host", "domain", times)
            cells.append("AUTOMATED" if verdict.automated else "-")
        print(
            f"{scenario_name:<26}" + "".join(f"{c:>28}" for c in cells)
        )

    print("\ninside the dynamic histogram (beacon with outlier):")
    hist = histogram_from_timestamps(with_outlier(beacon(count=40)), 10.0)
    for bin_ in hist.bins:
        print(
            f"  hub {bin_.hub:>9.1f} s   count {bin_.count:>3}   "
            f"frequency {bin_.frequency:.2f}"
        )
    print(f"  inferred beacon period: {hist.period:.0f} s")


if __name__ == "__main__":
    main()
