"""Unit tests for the table/CDF rendering helpers."""

from repro.eval import cdf_at, render_cdf, render_series, render_table


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(("a", "b"), [(1, 2), (3, 4)], title="T")
        assert "T" in text
        assert "a" in text and "b" in text
        assert "3" in text and "4" in text

    def test_column_alignment(self):
        text = render_table(("name", "n"), [("longvalue", 1)])
        lines = text.splitlines()
        assert len({len(line) for line in lines[:1]}) == 1

    def test_empty_rows(self):
        text = render_table(("x",), [])
        assert "x" in text


class TestCdf:
    def test_cdf_at_basic(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(samples, 2.0) == 0.5
        assert cdf_at(samples, 0.0) == 0.0
        assert cdf_at(samples, 10.0) == 1.0

    def test_cdf_at_empty(self):
        assert cdf_at([], 5.0) == 0.0

    def test_render_cdf_has_checkpoints(self):
        text = render_cdf([1.0, 2.0, 3.0], label="gaps")
        assert "gaps" in text
        assert "p100%" in text or "p 100%" in text

    def test_render_cdf_empty(self):
        assert "no samples" in render_cdf([], label="x")


class TestRenderSeries:
    def test_pairs_rendered(self):
        text = render_series([0.4, 0.5], [10, 7], x_label="thr", y_label="n")
        assert "0.4" in text and "10" in text
        assert "thr" in text and "n" in text
