"""Unit tests for the domain scorers (regression and additive)."""

import pytest

from repro.core import AdditiveSimilarityScorer, multi_host_beacon_heuristic
from repro.core.scoring import RegressionCCScorer, RegressionSimilarityScorer
from repro.features import CC_FEATURE_NAMES, FeatureExtractor, fit_linear_model
from repro.features.extract import SIMILARITY_FEATURE_NAMES
from repro.logs import Connection
from repro.profiling import DailyTraffic
from repro.timing.detector import AutomationVerdict


def conn(host, domain, ts=0.0, ip="", referer="http://x/", ua="UA"):
    return Connection(
        timestamp=ts, host=host, domain=domain,
        resolved_ip=ip, user_agent=ua, referer=referer,
    )


def traffic_from(connections):
    traffic = DailyTraffic(0)
    traffic.ingest(connections)
    traffic.finalize()
    return traffic


def verdict(host, domain, period, automated=True):
    return AutomationVerdict(
        host=host, domain=domain, automated=automated,
        divergence=0.0, period=period, connections=20,
    )


class TestAdditiveScorer:
    def _campaign_traffic(self):
        return traffic_from(
            [
                conn("h1", "cc.c3", ts=1000.0, ip="5.5.5.1"),
                conn("h2", "cc.c3", ts=1050.0, ip="5.5.5.1"),
                conn("h1", "deliver.c3", ts=900.0, ip="5.5.5.7"),
                conn("h3", "benign.n1", ts=40_000.0, ip="8.8.8.8"),
            ]
        )

    def test_components_for_campaign_domain(self):
        scorer = AdditiveSimilarityScorer()
        connectivity, timing, ip = scorer.components(
            "deliver.c3", {"cc.c3"}, self._campaign_traffic()
        )
        assert connectivity == pytest.approx(0.1)
        assert timing == 1.0  # 100 s gap < 600 s window
        assert ip == 2.0  # same /24

    def test_score_normalized(self):
        scorer = AdditiveSimilarityScorer()
        score = scorer.score("deliver.c3", {"cc.c3"}, self._campaign_traffic())
        assert 0.0 <= score <= 1.0
        assert score == pytest.approx((0.1 + 1.0 + 2.0) / 4.0)

    def test_unrelated_domain_scores_low(self):
        scorer = AdditiveSimilarityScorer()
        score = scorer.score("benign.n1", {"cc.c3"}, self._campaign_traffic())
        assert score < 0.25  # below the LANL threshold Ts

    def test_ip16_scores_one(self):
        traffic = traffic_from(
            [
                conn("h1", "cc.c3", ts=0.0, ip="5.5.5.1"),
                conn("h2", "sib.c3", ts=30_000.0, ip="5.5.200.1"),
            ]
        )
        _, _, ip = AdditiveSimilarityScorer().components("sib.c3", {"cc.c3"}, traffic)
        assert ip == 1.0

    def test_timing_window_configurable(self):
        traffic = self._campaign_traffic()
        tight = AdditiveSimilarityScorer(timing_window=50.0)
        _, timing, _ = tight.components("deliver.c3", {"cc.c3"}, traffic)
        assert timing == 0.0


class TestMultiHostBeaconHeuristic:
    def _traffic(self):
        return traffic_from([conn("h1", "cc.c3"), conn("h2", "cc.c3")])

    def test_two_synced_hosts_fire(self):
        verdicts = [verdict("h1", "cc.c3", 600.0), verdict("h2", "cc.c3", 605.0)]
        assert multi_host_beacon_heuristic("cc.c3", verdicts, self._traffic())

    def test_single_host_does_not_fire(self):
        verdicts = [verdict("h1", "cc.c3", 600.0)]
        assert not multi_host_beacon_heuristic("cc.c3", verdicts, self._traffic())

    def test_desynced_periods_do_not_fire(self):
        verdicts = [verdict("h1", "cc.c3", 600.0), verdict("h2", "cc.c3", 900.0)]
        assert not multi_host_beacon_heuristic("cc.c3", verdicts, self._traffic())

    def test_non_automated_verdicts_ignored(self):
        verdicts = [
            verdict("h1", "cc.c3", 600.0),
            verdict("h2", "cc.c3", 602.0, automated=False),
        ]
        assert not multi_host_beacon_heuristic("cc.c3", verdicts, self._traffic())

    def test_other_domains_ignored(self):
        verdicts = [verdict("h1", "other.c3", 600.0), verdict("h2", "other.c3", 601.0)]
        assert not multi_host_beacon_heuristic("cc.c3", verdicts, self._traffic())

    def test_three_hosts_any_close_pair(self):
        verdicts = [
            verdict("h1", "cc.c3", 100.0),
            verdict("h2", "cc.c3", 500.0),
            verdict("h3", "cc.c3", 506.0),
        ]
        assert multi_host_beacon_heuristic("cc.c3", verdicts, self._traffic())


class TestRegressionScorers:
    def _cc_scorer(self, threshold=0.4):
        # Model: score == rare_ua feature (weight 1 on rare_ua).
        rows, labels = [], []
        for rare_ua in (0.0, 1.0):
            for _ in range(5):
                rows.append([0.1, 0.1, 0.5, rare_ua, 0.5, 0.5])
                labels.append(rare_ua)
        model = fit_linear_model(CC_FEATURE_NAMES, rows, labels)
        return RegressionCCScorer(model, FeatureExtractor(), threshold=threshold)

    def test_is_cc_requires_automated_hosts(self):
        scorer = self._cc_scorer()
        traffic = traffic_from([conn("h1", "d.ru")])
        assert not scorer.is_cc("d.ru", traffic, set(), 0.0)

    def test_score_uses_model(self):
        scorer = self._cc_scorer()
        traffic = DailyTraffic(0)
        traffic.ingest(
            [conn("h1", "d.ru", ua="Weird")],
            ua_is_rare=lambda ua: True,
        )
        traffic.finalize()
        score = scorer.score("d.ru", traffic, {"h1"}, 0.0)
        assert score > 0.4

    def test_similarity_scorer_wraps_model(self):
        rows = [[0.1, t, 0.0, 0.0, 0.0, 0.0, 0.5, 0.5] for t in (0.0, 1.0)] * 4
        labels = [r[1] for r in rows]
        model = fit_linear_model(SIMILARITY_FEATURE_NAMES, rows, labels)
        scorer = RegressionSimilarityScorer(model, FeatureExtractor())
        traffic = traffic_from(
            [conn("h1", "cc.ru", ts=0.0), conn("h1", "near.ru", ts=10.0)]
        )
        near = scorer.score("near.ru", {"cc.ru"}, traffic, 0.0)
        traffic2 = traffic_from(
            [conn("h1", "cc.ru", ts=0.0), conn("h1", "far.ru", ts=40_000.0)]
        )
        far = scorer.score("far.ru", {"cc.ru"}, traffic2, 0.0)
        assert near > far
