"""Unit tests for C&C and similarity feature extraction."""

import math

import pytest

from repro.features import (
    CC_FEATURE_NAMES,
    SIMILARITY_FEATURE_NAMES,
    FeatureExtractor,
    scale_count,
    timing_closeness,
)
from repro.logs import Connection
from repro.profiling import DailyTraffic, UserAgentHistory


def conn(host, domain, ts=0.0, ua="CommonUA", referer="http://x/", ip=""):
    return Connection(
        timestamp=ts, host=host, domain=domain,
        resolved_ip=ip, user_agent=ua, referer=referer,
    )


def build_traffic(connections, rare_uas=()):
    traffic = DailyTraffic(0)
    traffic.ingest(connections, ua_is_rare=lambda ua: ua in rare_uas or not ua)
    traffic.finalize()
    return traffic


class TestScalars:
    def test_scale_count_zero(self):
        assert scale_count(0) == 0.0

    def test_scale_count_saturates(self):
        assert scale_count(10) == 1.0
        assert scale_count(50) == 1.0

    def test_scale_count_linear_below_cap(self):
        assert scale_count(5) == 0.5

    def test_timing_closeness_none(self):
        assert timing_closeness(None) == 0.0

    def test_timing_closeness_zero_gap(self):
        assert timing_closeness(0.0) == 1.0

    def test_timing_closeness_decays(self):
        assert timing_closeness(1800.0) == pytest.approx(math.exp(-1))
        assert timing_closeness(1800.0) > timing_closeness(3600.0)

    def test_timing_closeness_symmetric(self):
        assert timing_closeness(-600.0) == timing_closeness(600.0)


class TestCcFeatures:
    def test_vector_order_matches_names(self):
        traffic = build_traffic([conn("h1", "d.com")])
        extractor = FeatureExtractor()
        features = extractor.cc_features("d.com", traffic, set(), when=0.0)
        assert len(features.as_vector()) == len(CC_FEATURE_NAMES)

    def test_no_hosts_counts_contacting_hosts(self):
        traffic = build_traffic([conn("h1", "d.com"), conn("h2", "d.com")])
        features = FeatureExtractor().cc_features("d.com", traffic, set(), 0.0)
        assert features.no_hosts == pytest.approx(0.2)

    def test_auto_hosts_intersects_with_contacting(self):
        traffic = build_traffic([conn("h1", "d.com"), conn("h2", "d.com")])
        features = FeatureExtractor().cc_features(
            "d.com", traffic, {"h1", "h9"}, 0.0
        )
        assert features.auto_hosts == pytest.approx(0.1)

    def test_no_ref_fraction(self):
        traffic = build_traffic(
            [conn("h1", "d.com", referer=""), conn("h2", "d.com")]
        )
        features = FeatureExtractor().cc_features("d.com", traffic, set(), 0.0)
        assert features.no_ref == pytest.approx(0.5)

    def test_rare_ua_fraction(self):
        traffic = build_traffic(
            [conn("h1", "d.com", ua="Weird/1"), conn("h2", "d.com")],
            rare_uas={"Weird/1"},
        )
        features = FeatureExtractor().cc_features("d.com", traffic, set(), 0.0)
        assert features.rare_ua == pytest.approx(0.5)

    def test_without_whois_registration_is_neutral(self):
        traffic = build_traffic([conn("h1", "d.com")])
        features = FeatureExtractor().cc_features("d.com", traffic, set(), 0.0)
        assert features.dom_age == 0.5
        assert features.dom_validity == 0.5

    def test_ua_history_integration(self):
        history = UserAgentHistory(rare_max_hosts=2)
        history.bootstrap([("Popular", f"h{i}") for i in range(5)])
        traffic = DailyTraffic(0)
        traffic.ingest(
            [conn("h1", "d.com", ua="Popular"), conn("h2", "d.com", ua="Odd")],
            ua_is_rare=history.is_rare,
        )
        traffic.finalize()
        features = FeatureExtractor(history).cc_features("d.com", traffic, set(), 0.0)
        assert features.rare_ua == pytest.approx(0.5)


class TestSimilarityFeatures:
    def _traffic(self):
        return build_traffic(
            [
                conn("h1", "cc.ru", ts=1000.0, ip="5.5.5.10"),
                conn("h1", "near.ru", ts=1100.0, ip="5.5.5.99"),
                conn("h1", "far.com", ts=50_000.0, ip="9.9.9.9"),
                conn("h2", "sub16.net", ts=2000.0, ip="5.5.77.3"),
                conn("h2", "cc.ru", ts=2100.0, ip="5.5.5.10"),
            ]
        )

    def test_vector_order_matches_names(self):
        features = FeatureExtractor().similarity_features(
            "near.ru", {"cc.ru"}, self._traffic(), 0.0
        )
        assert len(features.as_vector()) == len(SIMILARITY_FEATURE_NAMES)

    def test_min_visit_gap(self):
        gap = FeatureExtractor.min_visit_gap("near.ru", {"cc.ru"}, self._traffic())
        assert gap == pytest.approx(100.0)

    def test_min_visit_gap_no_shared_host(self):
        traffic = build_traffic(
            [conn("h1", "a.com", ts=0.0), conn("h2", "b.com", ts=0.0)]
        )
        assert FeatureExtractor.min_visit_gap("a.com", {"b.com"}, traffic) is None

    def test_self_comparison_excluded(self):
        traffic = self._traffic()
        assert FeatureExtractor.min_visit_gap("cc.ru", {"cc.ru"}, traffic) is None

    def test_ip24_proximity(self):
        ip24, ip16 = FeatureExtractor.subnet_proximity(
            "near.ru", {"cc.ru"}, self._traffic()
        )
        assert ip24 == 1.0
        assert ip16 == 1.0  # /24 implies /16 (the paper's correlation)

    def test_ip16_only(self):
        ip24, ip16 = FeatureExtractor.subnet_proximity(
            "sub16.net", {"cc.ru"}, self._traffic()
        )
        assert ip24 == 0.0
        assert ip16 == 1.0

    def test_no_proximity(self):
        ip24, ip16 = FeatureExtractor.subnet_proximity(
            "far.com", {"cc.ru"}, self._traffic()
        )
        assert (ip24, ip16) == (0.0, 0.0)

    def test_no_resolved_ip_gives_zero(self):
        traffic = build_traffic([conn("h1", "noip.com"), conn("h1", "cc.ru", ip="5.5.5.1")])
        assert FeatureExtractor.subnet_proximity("noip.com", {"cc.ru"}, traffic) == (0.0, 0.0)

    def test_near_domain_scores_closer_than_far(self):
        extractor = FeatureExtractor()
        traffic = self._traffic()
        near = extractor.similarity_features("near.ru", {"cc.ru"}, traffic, 0.0)
        far = extractor.similarity_features("far.com", {"cc.ru"}, traffic, 0.0)
        assert near.dom_interval > far.dom_interval
        assert near.ip24 > far.ip24
