"""Tests for detector state persistence."""

import json

import pytest

from repro.config import SystemConfig
from repro.core import EnterpriseDetector
from repro.state import (
    StateError,
    decode_config,
    decode_history,
    decode_model,
    decode_ua_history,
    detector_state,
    encode_config,
    encode_history,
    encode_model,
    encode_ua_history,
    load_detector,
    restore_detector,
    save_detector,
)


@pytest.fixture(scope="module")
def trained(enterprise_dataset):
    detector = EnterpriseDetector(whois=enterprise_dataset.whois)
    detector.train(
        enterprise_dataset.day_batches(0, enterprise_dataset.config.bootstrap_days),
        enterprise_dataset.build_virustotal(),
    )
    return detector


class TestComponentRoundTrips:
    def test_history(self, trained):
        restored = decode_history(encode_history(trained.history))
        assert len(restored) == len(trained.history)
        some = next(iter(trained.history._first_seen))
        assert restored.first_seen(some) == trained.history.first_seen(some)

    def test_ua_history(self, trained):
        restored = decode_ua_history(encode_ua_history(trained.ua_history))
        assert len(restored) == len(trained.ua_history)
        for ua in list(trained.ua_history._hosts_by_ua)[:5]:
            assert restored.popularity(ua) == trained.ua_history.popularity(ua)
            assert restored.is_rare(ua) == trained.ua_history.is_rare(ua)

    def test_model(self, trained):
        model = trained.cc_scorer.model
        restored = decode_model(encode_model(model))
        assert restored.feature_names == model.feature_names
        vector = [0.1, 0.2, 0.5, 1.0, 0.3, 0.7]
        assert restored.score(vector) == pytest.approx(model.score(vector))
        for original, copy in zip(model.coefficients, restored.coefficients):
            assert copy.name == original.name
            assert copy.p_value == pytest.approx(original.p_value)

    def test_config(self):
        config = SystemConfig().with_thresholds(similarity=0.6, cc_score=0.45)
        restored = decode_config(encode_config(config))
        assert restored == config

    def test_state_is_json_serializable(self, trained):
        text = json.dumps(detector_state(trained))
        assert "cc_model" in text


class TestDetectorRoundTrip:
    def test_save_load(self, trained, enterprise_dataset, tmp_path):
        path = tmp_path / "state.json"
        save_detector(trained, path)
        restored = load_detector(path, whois=enterprise_dataset.whois)

        day = enterprise_dataset.config.bootstrap_days
        conns = enterprise_dataset.day_connections(day)
        original_result = trained.process_day(day, conns, update_profiles=False)
        restored_result = restored.process_day(day, conns, update_profiles=False)
        assert original_result.rare_domains == restored_result.rare_domains
        assert original_result.cc_domain_names == restored_result.cc_domain_names

    def test_restored_scores_identical(self, trained, enterprise_dataset, tmp_path):
        path = tmp_path / "state.json"
        save_detector(trained, path)
        restored = load_detector(path, whois=enterprise_dataset.whois)
        vector = [0.0, 0.0, 1.0, 1.0, 0.1, 0.2]
        assert restored.cc_scorer.model.score(vector) == pytest.approx(
            trained.cc_scorer.model.score(vector)
        )
        assert restored.cc_scorer.threshold == trained.cc_scorer.threshold

    def test_version_check(self, trained):
        payload = detector_state(trained)
        payload["version"] = 999
        with pytest.raises(StateError):
            restore_detector(payload)

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StateError):
            load_detector(path)

    def test_untrained_detector_round_trips(self, tmp_path):
        detector = EnterpriseDetector()
        path = tmp_path / "fresh.json"
        save_detector(detector, path)
        restored = load_detector(path)
        assert restored.cc_scorer is None
        assert restored.similarity_scorer is None


class TestEngineDelta:
    """Barrier delta checkpoints: a full snapshot plus replayed deltas
    must equal the live engine, and deltas must refuse mid-day state."""

    def _engine(self, lanl_dataset):
        from repro.streaming import StreamingDetector

        return StreamingDetector(
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )

    def test_dns_delta_chain_round_trip(self, lanl_dataset):
        from repro.state import (
            EngineDeltaTracker,
            apply_engine_delta,
            encode_engine,
            restore_engine,
        )

        live = self._engine(lanl_dataset)
        live.submit_raw(lanl_dataset.day_records(1))
        live.poll()
        live.rollover(detect=False)
        base = encode_engine(live)
        tracker = EngineDeltaTracker(live)

        deltas = []
        for march_date in (2, 3):
            live.submit_raw(lanl_dataset.day_records(march_date))
            live.poll()
            live.rollover()
            deltas.append(tracker.delta())
        assert deltas[0]["first_seen"]  # day 2 saw new domains

        restored = restore_engine(base)
        for delta in deltas:
            apply_engine_delta(restored, delta)
        restored.resync()
        assert encode_engine(restored) == encode_engine(live)

    def test_delta_is_incremental(self, lanl_dataset):
        from repro.state import EngineDeltaTracker

        live = self._engine(lanl_dataset)
        live.submit_raw(lanl_dataset.day_records(1))
        live.poll()
        live.rollover(detect=False)
        tracker = EngineDeltaTracker(live)
        live.submit_raw(lanl_dataset.day_records(2))
        live.poll()
        live.rollover()
        first = tracker.delta()
        assert first["first_seen"]
        # Nothing happened since: the next delta must be empty additions.
        second = tracker.delta()
        assert not second["first_seen"]
        assert not second["committed_days"]

    def test_mid_day_delta_rejected(self, lanl_dataset):
        from repro.state import EngineDeltaTracker

        live = self._engine(lanl_dataset)
        live.submit_raw(lanl_dataset.day_records(1))
        live.poll()
        live.rollover(detect=False)
        tracker = EngineDeltaTracker(live)
        live.submit_raw(lanl_dataset.day_records(2))
        live.poll()
        with pytest.raises(StateError, match="barrier"):
            tracker.delta()


class TestEngineDispatch:
    """encode_engine/restore_engine route on the snapshot's kind tag."""

    def test_dns_engine_round_trip(self):
        from repro.state import encode_engine, restore_engine
        from repro.streaming import StreamingDetector

        engine = StreamingDetector()
        payload = encode_engine(engine)
        assert payload["kind"] == "streaming"
        restored = restore_engine(payload)
        assert isinstance(restored, StreamingDetector)

    def test_enterprise_engine_round_trip(self, trained, enterprise_dataset):
        import copy

        from repro.state import encode_engine, restore_engine
        from repro.streaming import StreamingEnterpriseDetector

        engine = StreamingEnterpriseDetector(copy.deepcopy(trained))
        payload = encode_engine(engine)
        assert payload["kind"] == "streaming-enterprise"
        restored = restore_engine(payload, whois=enterprise_dataset.whois)
        assert isinstance(restored, StreamingEnterpriseDetector)
        assert restored.start_day == engine.start_day
        assert restored.batch.cc_scorer.threshold == pytest.approx(
            engine.batch.cc_scorer.threshold
        )

    def test_unknown_kind_rejected(self):
        from repro.state import restore_engine

        with pytest.raises(StateError, match="not a streaming engine"):
            restore_engine({"version": 1, "kind": "detector"})
