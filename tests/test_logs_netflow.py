"""Unit tests for the NetFlow substrate and passive-DNS join."""

import pytest

from repro.logs import (
    DnsRecord,
    DnsRecordType,
    NetflowFormatError,
    NetflowRecord,
    PassiveDnsMap,
    format_netflow_line,
    normalize_netflow_records,
    parse_netflow_line,
    parse_netflow_log,
)


def flow(**overrides) -> NetflowRecord:
    base = dict(
        timestamp=100.0, source_ip="10.0.0.1", destination_ip="93.184.216.34",
        destination_port=443, protocol="TCP", byte_count=1200, packet_count=9,
    )
    base.update(overrides)
    return NetflowRecord(**base)


def dns(domain, ip, ts=0.0):
    return DnsRecord(
        timestamp=ts, source_ip="10.0.0.1", domain=domain,
        record_type=DnsRecordType.A, resolved_ip=ip,
    )


class TestNetflowParsing:
    def test_round_trip(self):
        record = flow()
        assert parse_netflow_line(format_netflow_line(record)) == record

    def test_wrong_field_count(self):
        with pytest.raises(NetflowFormatError):
            parse_netflow_line("1.0 a b 443")

    def test_bad_port(self):
        line = format_netflow_line(flow()).replace(" 443 ", " x ")
        with pytest.raises(NetflowFormatError):
            parse_netflow_line(line)

    def test_stream_skips_malformed(self):
        lines = [format_netflow_line(flow()), "junk", ""]
        assert len(list(parse_netflow_log(lines))) == 1

    def test_strict_raises(self):
        with pytest.raises(NetflowFormatError):
            list(parse_netflow_log(["junk"], skip_malformed=False))

    def test_is_web(self):
        assert flow(destination_port=80).is_web
        assert flow(destination_port=8443).is_web
        assert not flow(destination_port=22).is_web


class TestPassiveDnsMap:
    def test_basic_binding(self):
        pdns = PassiveDnsMap()
        pdns.observe(dns("www.evil.example", "1.2.3.4", ts=10.0))
        assert pdns.lookup("1.2.3.4", 20.0) == "evil.example"

    def test_no_binding_before_observation(self):
        pdns = PassiveDnsMap()
        pdns.observe(dns("a.com", "1.2.3.4", ts=100.0))
        assert pdns.lookup("1.2.3.4", 50.0) is None

    def test_rebinding_over_time(self):
        pdns = PassiveDnsMap()
        pdns.observe(dns("old.com", "1.2.3.4", ts=0.0))
        pdns.observe(dns("new.com", "1.2.3.4", ts=100.0))
        assert pdns.lookup("1.2.3.4", 50.0) == "old.com"
        assert pdns.lookup("1.2.3.4", 150.0) == "new.com"

    def test_same_domain_not_duplicated(self):
        pdns = PassiveDnsMap()
        pdns.observe(dns("a.com", "1.2.3.4", ts=0.0))
        pdns.observe(dns("a.com", "1.2.3.4", ts=10.0))
        assert pdns.lookup("1.2.3.4", 20.0) == "a.com"

    def test_non_a_records_ignored(self):
        pdns = PassiveDnsMap()
        record = DnsRecord(
            timestamp=0.0, source_ip="h", domain="a.com",
            record_type=DnsRecordType.TXT, resolved_ip="1.2.3.4",
        )
        pdns.observe(record)
        assert pdns.lookup("1.2.3.4", 10.0) is None

    def test_failed_lookups_ignored(self):
        pdns = PassiveDnsMap()
        pdns.observe(dns("a.com", "", ts=0.0))
        assert len(pdns) == 0

    def test_out_of_order_insert(self):
        pdns = PassiveDnsMap()
        pdns.observe(dns("late.com", "1.2.3.4", ts=100.0))
        pdns.observe(dns("early.com", "1.2.3.4", ts=0.0))
        assert pdns.lookup("1.2.3.4", 50.0) == "early.com"
        assert pdns.lookup("1.2.3.4", 150.0) == "late.com"

    def test_fold_level(self):
        pdns = PassiveDnsMap(fold_level=3)
        pdns.observe(dns("a.b.c.d", "1.2.3.4", ts=0.0))
        assert pdns.lookup("1.2.3.4", 1.0) == "b.c.d"


class TestNormalizeNetflow:
    def _pdns(self):
        pdns = PassiveDnsMap()
        pdns.observe(dns("evil.ru", "5.5.5.5", ts=0.0))
        return pdns

    def test_joined_flow_becomes_connection(self):
        conns = list(
            normalize_netflow_records(
                [flow(destination_ip="5.5.5.5")], self._pdns()
            )
        )
        assert len(conns) == 1
        assert conns[0].domain == "evil.ru"
        assert conns[0].host == "10.0.0.1"
        assert conns[0].user_agent is None

    def test_unmapped_flow_dropped(self):
        conns = list(
            normalize_netflow_records(
                [flow(destination_ip="9.9.9.9")], self._pdns()
            )
        )
        assert conns == []

    def test_non_web_dropped_by_default(self):
        conns = list(
            normalize_netflow_records(
                [flow(destination_ip="5.5.5.5", destination_port=22)],
                self._pdns(),
            )
        )
        assert conns == []

    def test_web_only_false_keeps_all_ports(self):
        conns = list(
            normalize_netflow_records(
                [flow(destination_ip="5.5.5.5", destination_port=22)],
                self._pdns(), web_only=False,
            )
        )
        assert len(conns) == 1

    def test_host_of_ip_hook(self):
        conns = list(
            normalize_netflow_records(
                [flow(destination_ip="5.5.5.5")],
                self._pdns(),
                host_of_ip=lambda ip, ts: f"host-for-{ip}",
            )
        )
        assert conns[0].host == "host-for-10.0.0.1"


class TestLanlNetflow:
    def test_flows_follow_dns(self, lanl_dataset):
        flows = lanl_dataset.day_netflow(2)
        assert flows
        times = [f.timestamp for f in flows]
        assert times == sorted(times)
        assert all(f.is_web for f in flows)

    def test_netflow_pipeline_detects_campaign(self, lanl_dataset):
        """The full detection loop works from flows + passive DNS."""
        from repro.logs.netflow import normalize_netflow_records
        from repro.profiling import DailyTraffic, DestinationHistory, extract_rare_domains
        from repro.timing import AutomationDetector

        pdns = PassiveDnsMap(fold_level=3)
        for record in lanl_dataset.day_records(2):
            pdns.observe(record)
        history = DestinationHistory()
        history.bootstrap(lanl_dataset.bootstrap_domains)
        day = lanl_dataset.config.bootstrap_days + 1
        traffic = DailyTraffic(day)
        traffic.ingest(
            normalize_netflow_records(lanl_dataset.day_netflow(2), pdns)
        )
        traffic.finalize()
        rare = extract_rare_domains(traffic, history)
        truth = lanl_dataset.campaign_for_date(2)
        assert set(truth.cc_domains) <= rare
        detector = AutomationDetector()
        verdicts = detector.automated_pairs(
            (key, times) for key, times in sorted(traffic.timestamps.items())
            if key[1] in rare
        )
        automated_domains = {v.domain for v in verdicts}
        assert set(truth.cc_domains) <= automated_domains
