"""Unit tests for WHOIS registration features."""

import pytest

from repro.features import WhoisFeatureExtractor, normalize_age, normalize_validity
from repro.intel import WhoisDatabase

DAY = 86_400.0


class TestNormalization:
    def test_age_zero_for_brand_new(self):
        assert normalize_age(0.0) == 0.0

    def test_age_caps_at_one_year(self):
        assert normalize_age(365.0) == 1.0
        assert normalize_age(3650.0) == 1.0

    def test_age_negative_clamped(self):
        """Observed-before-registration (DGA case) pins age to 0."""
        assert normalize_age(-5.0) == 0.0

    def test_age_midrange(self):
        assert normalize_age(182.5) == pytest.approx(0.5)

    def test_validity_caps_at_five_years(self):
        assert normalize_validity(5 * 365.0) == 1.0
        assert normalize_validity(50 * 365.0) == 1.0

    def test_validity_expired_is_zero(self):
        assert normalize_validity(-10.0) == 0.0


class TestWhoisDatabase:
    def test_register_and_lookup(self):
        db = WhoisDatabase()
        db.register("evil.ru", registered=0.0, expires=365 * DAY)
        record = db.lookup("evil.ru")
        assert record is not None
        assert record.age_days(30 * DAY) == pytest.approx(30.0)
        assert record.validity_days(30 * DAY) == pytest.approx(335.0)

    def test_unknown_domain_is_none(self):
        assert WhoisDatabase().lookup("ghost.info") is None

    def test_expiry_before_registration_rejected(self):
        db = WhoisDatabase()
        with pytest.raises(ValueError):
            db.register("x.com", registered=100.0, expires=50.0)

    def test_negative_age_before_registration(self):
        """Section VI-D: detection can precede registration."""
        db = WhoisDatabase()
        db.register("dga.info", registered=10 * DAY, expires=400 * DAY)
        assert db.lookup("dga.info").age_days(5 * DAY) < 0

    def test_contains_and_len(self):
        db = WhoisDatabase()
        db.register("a.com", 0.0, DAY)
        assert "a.com" in db and "b.com" not in db
        assert len(db) == 1


class TestWhoisFeatureExtractor:
    def test_extract_known_domain(self):
        db = WhoisDatabase()
        db.register("old.com", registered=-400 * DAY, expires=5 * 365 * DAY)
        extractor = WhoisFeatureExtractor(db)
        features = extractor.extract("old.com", when=0.0)
        assert features.dom_age == 1.0
        assert not features.imputed

    def test_unknown_domain_imputed_neutral_initially(self):
        extractor = WhoisFeatureExtractor(WhoisDatabase())
        features = extractor.extract("ghost.info", when=0.0)
        assert features.imputed
        assert features.dom_age == 0.5
        assert features.dom_validity == 0.5

    def test_imputation_tracks_population_mean(self):
        """Section VI-C: defaults are averages over observed domains."""
        db = WhoisDatabase()
        db.register("young.ru", registered=0.0, expires=365 * DAY)
        db.register("old.com", registered=-2 * 365 * DAY, expires=5 * 365 * DAY)
        extractor = WhoisFeatureExtractor(db)
        when = 10 * DAY
        young = extractor.extract("young.ru", when)
        old = extractor.extract("old.com", when)
        imputed = extractor.extract("ghost.info", when)
        assert imputed.imputed
        assert imputed.dom_age == pytest.approx((young.dom_age + old.dom_age) / 2)

    def test_unregistered_dga_gets_min_age_when_looked_up_later(self):
        db = WhoisDatabase()
        db.register("dga.info", registered=20 * DAY, expires=400 * DAY)
        extractor = WhoisFeatureExtractor(db)
        features = extractor.extract("dga.info", when=15 * DAY)
        assert features.dom_age == 0.0  # negative age clamps to youngest
