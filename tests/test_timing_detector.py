"""Unit tests for the automation detector and its baselines."""

import random

from repro.config import HistogramConfig
from repro.timing import (
    AutocorrelationDetector,
    AutomationDetector,
    FftDetector,
    StaticBinDetector,
    StdDevDetector,
)


def beacon(period=600.0, count=30, jitter=0.0, start=0.0, seed=1):
    rng = random.Random(seed)
    times, t = [], start
    for _ in range(count):
        times.append(t)
        t += period + rng.uniform(-jitter, jitter)
    return times


def browsing(count=30, seed=2):
    rng = random.Random(seed)
    times, t = [], 0.0
    for _ in range(count):
        t += rng.expovariate(1.0 / 300.0)
        times.append(t)
    return times


class TestAutomationDetector:
    def test_detects_perfect_beacon(self):
        detector = AutomationDetector()
        verdict = detector.test_series("h", "d.com", beacon())
        assert verdict.automated
        assert verdict.divergence == 0.0
        assert verdict.period == 600.0

    def test_detects_jittered_beacon(self):
        detector = AutomationDetector()
        verdict = detector.test_series("h", "d.com", beacon(jitter=3.0))
        assert verdict.automated

    def test_rejects_human_browsing(self):
        detector = AutomationDetector()
        verdict = detector.test_series("h", "d.com", browsing())
        assert not verdict.automated

    def test_short_series_never_automated(self):
        detector = AutomationDetector(HistogramConfig(min_connections=4))
        verdict = detector.test_series("h", "d.com", [0.0, 600.0, 1200.0])
        assert not verdict.automated
        assert verdict.connections == 3

    def test_outlier_resilience(self):
        """One big gap (laptop asleep) must not break detection."""
        times = beacon(count=30)
        times = times[:15] + [t + 20_000.0 for t in times[15:]]
        detector = AutomationDetector()
        assert detector.test_series("h", "d.com", times).automated

    def test_threshold_controls_sensitivity(self):
        times = beacon(count=12, jitter=0.0)
        # Corrupt a third of the gaps far beyond any bin.
        times = times[:8] + [t + 5_000.0 * i for i, t in enumerate(times[8:])]
        strict = AutomationDetector(HistogramConfig(jeffrey_threshold=0.0))
        loose = AutomationDetector(HistogramConfig(jeffrey_threshold=0.35))
        assert not strict.test_series("h", "d", times).automated
        assert loose.test_series("h", "d", times).automated

    def test_automated_pairs_filters(self):
        detector = AutomationDetector()
        series = [
            (("h1", "beacon.com"), beacon()),
            (("h2", "human.com"), browsing()),
        ]
        verdicts = detector.automated_pairs(series)
        assert [v.domain for v in verdicts] == ["beacon.com"]

    def test_l1_metric_variant(self):
        detector = AutomationDetector(metric="l1")
        assert detector.test_series("h", "d", beacon()).automated


class TestStdDevBaseline:
    def test_detects_clean_beacon(self):
        assert StdDevDetector().test_series("h", "d", beacon()).automated

    def test_single_outlier_breaks_it(self):
        """The failure mode that motivated dynamic histograms (IV-C)."""
        times = beacon(count=20)
        times[-1] += 50_000.0
        stddev = StdDevDetector().test_series("h", "d", times)
        dynamic = AutomationDetector().test_series("h", "d", times)
        assert not stddev.automated
        assert dynamic.automated

    def test_rejects_browsing(self):
        assert not StdDevDetector().test_series("h", "d", browsing()).automated

    def test_short_series(self):
        assert not StdDevDetector().test_series("h", "d", [1.0, 2.0]).automated


class TestFftBaseline:
    def test_detects_beacon(self):
        assert FftDetector().test_series("h", "d", beacon(count=50)).automated

    def test_rejects_browsing(self):
        assert not FftDetector().test_series("h", "d", browsing(count=50)).automated

    def test_short_series(self):
        assert not FftDetector().test_series("h", "d", [0.0, 1.0]).automated


class TestAutocorrelationBaseline:
    def test_detects_beacon(self):
        verdict = AutocorrelationDetector().test_series("h", "d", beacon(count=50))
        assert verdict.automated

    def test_rejects_browsing(self):
        verdict = AutocorrelationDetector().test_series("h", "d", browsing(count=50))
        assert not verdict.automated


class TestStaticBinAblation:
    def test_detects_aligned_beacon(self):
        assert StaticBinDetector().test_series("h", "d", beacon()).automated

    def test_bin_edge_straddling_hurts_static_but_not_dynamic(self):
        """Intervals alternating around a static bin edge split into two
        static bins but one dynamic cluster (the IV-C motivation)."""
        times, t = [], 0.0
        for i in range(30):
            times.append(t)
            t += 599.0 if i % 2 else 601.0  # straddles the 600 edge (W=10)
        static = StaticBinDetector(bin_width=10.0, jeffrey_threshold=0.06)
        dynamic = AutomationDetector()
        assert not static.test_series("h", "d", times).automated
        assert dynamic.test_series("h", "d", times).automated
