"""Unit tests for the OLS/ridge linear model."""

import numpy as np
import pytest

from repro.features import fit_linear_model


class TestFit:
    def test_recovers_exact_linear_relation(self):
        rows = [[float(i)] for i in range(10)]
        labels = [2.0 * i + 1.0 for i in range(10)]
        model = fit_linear_model(("x",), rows, labels)
        assert model.intercept == pytest.approx(1.0)
        assert model.weights[0] == pytest.approx(2.0)
        assert model.r_squared == pytest.approx(1.0)

    def test_score_matches_fit(self):
        rows = [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [0.0, 0.0], [0.5, 0.5]]
        labels = [1.0, 0.0, 1.0, 0.0, 0.5]
        model = fit_linear_model(("a", "b"), rows, labels)
        assert model.score([1.0, 0.0]) == pytest.approx(1.0, abs=1e-6)

    def test_score_many_matches_score(self):
        rows = [[float(i), float(i % 3)] for i in range(12)]
        labels = [r[0] - r[1] for r in rows]
        model = fit_linear_model(("a", "b"), rows, labels)
        many = model.score_many(np.array(rows))
        singles = [model.score(r) for r in rows]
        assert np.allclose(many, singles)

    def test_significant_feature_found(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(size=(200, 2))
        y = 3.0 * x[:, 0] + rng.normal(scale=0.1, size=200)
        model = fit_linear_model(("signal", "noise"), x.tolist(), y.tolist())
        assert model.coefficient("signal").significant
        assert model.coefficient("signal").estimate == pytest.approx(3.0, abs=0.2)
        # The noise term's estimate must be negligible next to the signal.
        assert abs(model.coefficient("noise").estimate) < 0.3

    def test_noise_feature_insignificant_but_present(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(size=(100, 1))
        y = rng.normal(size=100)
        model = fit_linear_model(("noise",), x.tolist(), y.tolist())
        assert model.coefficient("noise").p_value > 0.01

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            fit_linear_model(("a", "b"), [[1.0]], [1.0])

    def test_wrong_label_length_rejected(self):
        with pytest.raises(ValueError):
            fit_linear_model(("a",), [[1.0], [2.0]], [1.0])

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_linear_model(("a",), [[1.0]], [1.0])

    def test_score_wrong_arity_rejected(self):
        model = fit_linear_model(("a",), [[0.0], [1.0], [2.0]], [0.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            model.score([1.0, 2.0])

    def test_collinear_design_does_not_crash(self):
        rows = [[1.0, 2.0], [2.0, 4.0], [3.0, 6.0], [4.0, 8.0]]
        labels = [1.0, 2.0, 3.0, 4.0]
        model = fit_linear_model(("a", "a2"), rows, labels)
        assert np.isfinite(model.score([1.0, 2.0]))

    def test_unknown_coefficient_name(self):
        model = fit_linear_model(("a",), [[0.0], [1.0], [2.0]], [0.0, 1.0, 2.0])
        with pytest.raises(KeyError):
            model.coefficient("zzz")

    def test_summary_contains_terms(self):
        model = fit_linear_model(("alpha",), [[0.0], [1.0], [2.0]], [0.0, 1.0, 2.0])
        text = model.summary()
        assert "alpha" in text and "(intercept)" in text


class TestRidge:
    def test_ridge_shrinks_weights(self):
        rows = [[0.0], [0.0], [1.0], [1.0]]
        labels = [0.0, 0.0, 1.0, 1.0]
        plain = fit_linear_model(("x",), rows, labels)
        ridged = fit_linear_model(("x",), rows, labels, ridge=1.0)
        assert abs(ridged.weights[0]) < abs(plain.weights[0])

    def test_ridge_stabilizes_separable_data(self):
        """Near-separable tiny sets explode without a penalty."""
        rows = [[1.0, 1.0], [1.0, 0.99], [0.0, 0.0], [0.0, 0.01]]
        labels = [1.0, 1.0, 0.0, 0.0]
        ridged = fit_linear_model(("a", "b"), rows, labels, ridge=0.1)
        assert all(abs(w) < 5.0 for w in ridged.weights)

    def test_zero_ridge_is_ols(self):
        rows = [[float(i)] for i in range(6)]
        labels = [2.0 * i for i in range(6)]
        a = fit_linear_model(("x",), rows, labels, ridge=0.0)
        b = fit_linear_model(("x",), rows, labels)
        assert a.weights[0] == pytest.approx(b.weights[0])

    def test_negative_ridge_rejected(self):
        with pytest.raises(ValueError):
            fit_linear_model(("x",), [[0.0], [1.0]], [0.0, 1.0], ridge=-1.0)

    def test_intercept_not_penalized(self):
        rows = [[0.0], [0.0], [0.0], [0.0]]
        labels = [5.0, 5.0, 5.0, 5.0]
        model = fit_linear_model(("x",), rows, labels, ridge=10.0)
        assert model.intercept == pytest.approx(5.0)
