"""Parity tests for the scoring index and incremental frontier scorers.

The incremental/batched scorers must produce *identical*
``BeliefPropagationResult`` detections, ordering and traces as the
legacy per-domain path -- not approximately equal scores.  These tests
assert exactly that over randomized multi-day traffic
(``random.Random(seed)`` loops standing in for hypothesis), including
warm-start (``prior=``) rounds and the WHOIS-imputation state the
enterprise path threads through scoring.
"""

from __future__ import annotations

import math
import random

import pytest

import numpy as np

from repro.config import LANL_CONFIG, SystemConfig
from repro.core.beliefprop import belief_propagation
from repro.core.pipeline import detect_on_enterprise_traffic
from repro.core.scoring import (
    AdditiveSimilarityScorer,
    BatchedSimilarityScorer,
    IncrementalAdditiveScorer,
    RegressionCCScorer,
    RegressionSimilarityScorer,
    group_verdicts_by_domain,
    multi_host_beacon_heuristic,
)
from repro.features.extract import SIMILARITY_FEATURE_NAMES, FeatureExtractor
from repro.features.regression import LinearModel
from repro.features.whois import WhoisFeatureExtractor
from repro.intel.whois_db import WhoisDatabase
from repro.logs.records import Connection
from repro.profiling.history import DestinationHistory
from repro.profiling.rare import (
    DailyTraffic,
    extract_rare_domains,
    rare_domains_by_host,
)
from repro.runner import detect_on_traffic
from repro.timing.detector import AutomationDetector

SECONDS_PER_DAY = 86_400.0

CC_NAMES = ("no_hosts", "auto_hosts", "no_ref", "rare_ua", "dom_age",
            "dom_validity")


# ---------------------------------------------------------------------------
# Random world generation
# ---------------------------------------------------------------------------

def _random_day_connections(
    rng: random.Random, day: int, *, with_http: bool
) -> list[Connection]:
    """One random day mixing beacon campaigns, co-visit satellites,
    popular noise and background rarities."""
    base = day * SECONDS_PER_DAY
    hosts = [f"h{i:02d}" for i in range(rng.randint(8, 14))]
    connections: list[Connection] = []

    def emit(host, domain, ts, ip="", no_ref=False):
        connections.append(Connection(
            timestamp=base + ts,
            host=host,
            domain=domain,
            resolved_ip=ip,
            referer=("" if no_ref else "http://ref.example/") if with_http
            else None,
            user_agent="agent/1.0" if with_http else None,
        ))

    # Beaconing campaigns: several hosts, near-identical periods, so
    # the multi-host C&C heuristic (DNS) / automation test (both) fire.
    for c in range(rng.randint(0, 2)):
        domain = f"cc{day}{c}.evil"
        subnet = rng.randint(1, 6)
        ip = f"10.{subnet}.{rng.randint(0, 3)}.{rng.randint(1, 254)}"
        period = rng.choice([30.0, 60.0, 90.0])
        campaign_hosts = rng.sample(hosts, rng.randint(2, 3))
        start = rng.uniform(0, 2000.0)
        for host in campaign_hosts:
            for i in range(rng.randint(6, 10)):
                emit(host, domain, start + i * period, ip, no_ref=True)
        # Satellites: same hosts, first contact near the campaign's,
        # sometimes sharing its /24 or /16.
        for s in range(rng.randint(1, 3)):
            sat = f"sat{day}{c}{s}.evil"
            proximity = rng.random()
            if proximity < 0.4:
                sat_ip = f"10.{subnet}.{rng.randint(0, 3)}.{rng.randint(1, 254)}"
            elif proximity < 0.6:
                sat_ip = f"10.{subnet}.{rng.randint(4, 9)}.{rng.randint(1, 254)}"
            else:
                sat_ip = f"172.16.{rng.randint(0, 9)}.{rng.randint(1, 254)}"
            host = rng.choice(campaign_hosts)
            offset = rng.uniform(-1200.0, 1200.0)
            for i in range(rng.randint(1, 3)):
                emit(host, sat, start + offset + i * 700.0, sat_ip)

    # Popular domains (contacted by >= 10 hosts): never rare.
    for p in range(rng.randint(1, 3)):
        domain = f"popular{p}.example"
        for host in hosts:
            emit(host, domain, rng.uniform(0, 80_000.0), "192.0.2.10")

    # Background rare domains: few hosts, scattered times and subnets.
    for b in range(rng.randint(6, 14)):
        domain = f"bg{day}{b}.example"
        ip = f"198.51.{rng.randint(0, 60)}.{rng.randint(1, 254)}"
        for host in rng.sample(hosts, rng.randint(1, 3)):
            for i in range(rng.randint(1, 4)):
                emit(host, domain, rng.uniform(0, 80_000.0), ip,
                     no_ref=rng.random() < 0.3)

    rng.shuffle(connections)
    return connections


def _aggregate(
    day: int,
    connections: list[Connection],
    history: DestinationHistory,
) -> tuple[DailyTraffic, set[str]]:
    traffic = DailyTraffic(day)
    traffic.ingest(connections)
    traffic.finalize()
    rare = extract_rare_domains(traffic, history, unpopular_max_hosts=10)
    return traffic, rare


def _commit(traffic: DailyTraffic, history: DestinationHistory) -> None:
    for domain in traffic.hosts_by_domain:
        history.stage(domain, traffic.day)
    history.commit_day(traffic.day)


def _assert_same_bp(left, right) -> None:
    """Both belief-propagation results byte-identical, trace included."""
    if left is None or right is None:
        assert left is None and right is None
        return
    assert left.hosts == right.hosts
    assert left.domains == right.domains
    assert left.detections == right.detections
    assert left.trace == right.trace


# ---------------------------------------------------------------------------
# DNS / additive path
# ---------------------------------------------------------------------------

@pytest.mark.parity
def test_detect_on_traffic_index_parity_multiday():
    """Indexed scoring equals the legacy path on random multi-day runs."""
    for seed in range(12):
        rng = random.Random(1000 + seed)
        history = DestinationHistory()
        automation = AutomationDetector(LANL_CONFIG.histogram)
        scorer = AdditiveSimilarityScorer()
        for day in range(3):
            connections = _random_day_connections(rng, day, with_http=False)
            traffic, rare = _aggregate(day, connections, history)
            hint_hosts = (
                sorted(traffic.domains_by_host)[:2]
                if rng.random() < 0.3 else ()
            )
            intel = (
                frozenset(rng.sample(sorted(rare), min(2, len(rare))))
                if rare and rng.random() < 0.3 else frozenset()
            )
            fast = detect_on_traffic(
                traffic, rare, automation=automation, scorer=scorer,
                config=LANL_CONFIG, hint_hosts=hint_hosts,
                intel_domains=intel, use_index=True,
            )
            slow = detect_on_traffic(
                traffic, rare, automation=automation, scorer=scorer,
                config=LANL_CONFIG, hint_hosts=hint_hosts,
                intel_domains=intel, use_index=False,
            )
            assert fast.cc_domains == slow.cc_domains
            assert fast.detected == slow.detected
            assert fast.intel_seeded == slow.intel_seeded
            _assert_same_bp(fast.bp_result, slow.bp_result)
            _commit(traffic, history)


@pytest.mark.parity
def test_belief_propagation_warm_start_parity():
    """Incremental scoring matches legacy under ``prior=`` warm starts."""
    for seed in range(8):
        rng = random.Random(7000 + seed)
        history = DestinationHistory()
        scorer = AdditiveSimilarityScorer()
        connections = _random_day_connections(rng, 0, with_http=False)
        # Round 1 on a prefix of the day, round 2 on the full day with
        # round 1's beliefs as the prior -- the streaming cadence.
        split = len(connections) * 2 // 3
        results = {}
        for label, batch_sizes in (("prefix", [split]),
                                   ("full", [split, len(connections)])):
            traffic = DailyTraffic(0)
            traffic.ingest(connections[:batch_sizes[-1]])
            traffic.finalize()
            rare = extract_rare_domains(traffic, history,
                                        unpopular_max_hosts=10)
            seeds = {d for d in sorted(rare) if d.startswith("cc")}
            seed_hosts: set[str] = set()
            for domain in seeds:
                seed_hosts.update(traffic.hosts_by_domain.get(domain, ()))
            if not seed_hosts:
                seed_hosts = set(sorted(traffic.domains_by_host)[:1])
            legacy_prior = results.get("prefix-legacy")
            fast_prior = results.get("prefix-fast")
            dom_host = {
                d: frozenset(traffic.hosts_by_domain.get(d, ()))
                for d in rare
            }
            host_rdom = rare_domains_by_host(traffic, rare)
            common = dict(
                dom_host=dom_host,
                host_rdom=host_rdom,
                detect_cc=lambda dom: dom in seeds,
                config=LANL_CONFIG.belief_propagation,
            )
            legacy = belief_propagation(
                seed_hosts, seeds,
                similarity_score=lambda d, mal: scorer.score(d, mal, traffic),
                prior=legacy_prior if label == "full" else None,
                **common,
            )
            incremental = IncrementalAdditiveScorer(scorer, traffic)
            fast = belief_propagation(
                seed_hosts, seeds,
                score_frontier=incremental.score_frontier,
                prior=fast_prior if label == "full" else None,
                **common,
            )
            _assert_same_bp(fast, legacy)
            results[f"{label}-legacy"] = legacy
            results[f"{label}-fast"] = fast


# ---------------------------------------------------------------------------
# Enterprise / regression path
# ---------------------------------------------------------------------------

def _linear(names, weights, intercept) -> LinearModel:
    return LinearModel(
        feature_names=tuple(names),
        intercept=intercept,
        weights=np.asarray(weights, dtype=float),
        coefficients=(),
        r_squared=0.0,
        n_samples=len(weights) + 2,
    )


def _enterprise_scorers(whois_db: WhoisDatabase | None):
    """A fresh, deterministic pair of trained-model scorers.

    Fresh per detection run: the WHOIS extractor's imputation means
    mutate during scoring, so parity runs each need identical initial
    state."""
    whois = (
        WhoisFeatureExtractor(whois_db) if whois_db is not None else None
    )
    extractor = FeatureExtractor(None, whois)
    cc_model = _linear(CC_NAMES, [0.5, 0.9, 0.3, 0.1, -0.2, -0.1], 0.02)
    sim_model = _linear(
        SIMILARITY_FEATURE_NAMES,
        [0.25, 0.5, 0.3, 0.1, 0.08, 0.04, -0.15, -0.08],
        0.03,
    )
    cc_scorer = RegressionCCScorer(cc_model, extractor, threshold=0.25)
    sim_scorer = RegressionSimilarityScorer(sim_model, extractor)
    return cc_scorer, sim_scorer


def _random_whois(rng: random.Random, connections) -> WhoisDatabase:
    db = WhoisDatabase()
    domains = sorted({c.domain for c in connections})
    for domain in domains:
        if rng.random() < 0.6:  # the rest impute from running means
            registered = rng.uniform(-2.0, 300.0) * SECONDS_PER_DAY
            db.register(
                domain,
                registered,
                registered + rng.uniform(30.0, 2000.0) * SECONDS_PER_DAY,
            )
    return db


@pytest.mark.parity
def test_detect_on_enterprise_traffic_index_parity():
    """Batched regression scoring equals the legacy path, including the
    WHOIS imputation state it leaves behind."""
    config = SystemConfig().with_thresholds(similarity=0.3, cc_score=0.25)
    for seed in range(10):
        rng = random.Random(3000 + seed)
        history = DestinationHistory()
        for day in range(2):
            connections = _random_day_connections(rng, day, with_http=True)
            whois_db = _random_whois(rng, connections) if day % 2 else None
            traffic, rare = _aggregate(day, connections, history)
            soc = (
                sorted(rare)[:2] if rare and rng.random() < 0.5 else ()
            )
            intel = (
                frozenset(rng.sample(sorted(rare), 1))
                if rare and rng.random() < 0.3 else frozenset()
            )
            runs = {}
            for use_index in (True, False):
                cc_scorer, sim_scorer = _enterprise_scorers(whois_db)
                result = detect_on_enterprise_traffic(
                    traffic, rare,
                    day=day,
                    automation=AutomationDetector(config.histogram),
                    cc_scorer=cc_scorer,
                    similarity_scorer=sim_scorer,
                    config=config,
                    soc_seed_domains=soc,
                    intel_domains=intel,
                    use_index=use_index,
                )
                whois = sim_scorer.extractor.whois
                runs[use_index] = (
                    result,
                    None if whois is None else (
                        whois._age_sum, whois._validity_sum, whois._observed
                    ),
                )
            fast, fast_whois = runs[True]
            slow, slow_whois = runs[False]
            assert fast.cc_domains == slow.cc_domains
            assert fast.intel_seeded == slow.intel_seeded
            _assert_same_bp(fast.no_hint, slow.no_hint)
            _assert_same_bp(fast.soc_hints, slow.soc_hints)
            assert fast.all_detected_domains() == slow.all_detected_domains()
            assert fast_whois == slow_whois
            _commit(traffic, history)


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------

@pytest.mark.parity
def test_traffic_index_incremental_matches_rebuild():
    """An index maintained per micro-batch equals one built at the end."""
    for seed in range(6):
        rng = random.Random(500 + seed)
        connections = _random_day_connections(rng, 0, with_http=False)
        live = DailyTraffic(0)
        live.index()  # armed before any traffic, like the aggregator
        for start in range(0, len(connections), 17):
            live.ingest(connections[start:start + 17])
        bulk = DailyTraffic(0)
        bulk.ingest(connections)
        left, right = live.index(), bulk.index()
        bulk.finalize()
        domains = sorted(live.hosts_by_domain)
        assert domains == sorted(bulk.hosts_by_domain)
        for domain in domains:
            l_id, r_id = left.domain_id(domain), right.domain_id(domain)
            assert left.host_count(l_id) == right.host_count(r_id)
            assert left.keys24(l_id) == right.keys24(r_id)
            assert left.keys16(l_id) == right.keys16(r_id)
            # Interning order differs between the two, so compare the
            # (host name -> first contact) rows, not raw ids.
            l_pairs = {
                left._host_names[h]: t for h, t in zip(
                    left.hosts_of(l_id), left.first_contacts_of(l_id)
                )
            }
            r_pairs = {
                right._host_names[h]: t for h, t in zip(
                    right.hosts_of(r_id), right.first_contacts_of(r_id)
                )
            }
            assert l_pairs == r_pairs
            for host in bulk.hosts_by_domain[domain]:
                assert l_pairs[host] == bulk.first_contact(host, domain)


@pytest.mark.parity
def test_bp_views_match_legacy_maps():
    """Index-backed dom_host / host_rdom views equal the eager maps."""
    rng = random.Random(99)
    connections = _random_day_connections(rng, 0, with_http=False)
    history = DestinationHistory()
    traffic, rare = _aggregate(0, connections, history)
    dom_host, host_rdom = traffic.bp_views(rare)
    legacy_dom_host = {
        d: frozenset(traffic.hosts_by_domain.get(d, ())) for d in rare
    }
    for domain in set(legacy_dom_host) | set(traffic.hosts_by_domain):
        assert set(dom_host.get(domain, ())) == set(
            legacy_dom_host.get(domain, ())
        )
    legacy_host_rdom = rare_domains_by_host(traffic, rare)
    for host in traffic.domains_by_host:
        assert set(host_rdom.get(host, ())) == set(
            legacy_host_rdom.get(host, ())
        )
    # Memoized reads are stable.
    for host in traffic.domains_by_host:
        assert host_rdom[host] is host_rdom[host]


@pytest.mark.parity
def test_grouped_beacon_heuristic_matches_full_scan():
    """Per-domain verdict slices give the same C&C set as rescanning
    the full verdict list for every domain."""
    for seed in range(6):
        rng = random.Random(42 + seed)
        history = DestinationHistory()
        connections = _random_day_connections(rng, 0, with_http=False)
        traffic, rare = _aggregate(0, connections, history)
        automation = AutomationDetector(LANL_CONFIG.histogram)
        series = [
            (key, times)
            for key, times in sorted(traffic.timestamps.items())
            if key[1] in rare
        ]
        verdicts = automation.automated_pairs(series)
        grouped = group_verdicts_by_domain(verdicts)
        fast = {
            domain for domain, slice_ in grouped.items()
            if multi_host_beacon_heuristic(domain, slice_, traffic)
        }
        slow = {
            domain for domain in {v.domain for v in verdicts}
            if multi_host_beacon_heuristic(domain, verdicts, traffic)
        }
        assert fast == slow


@pytest.mark.parity
def test_score_and_score_many_bitwise_equal():
    """The serial and batched linear scorers are bit-identical -- the
    contract the batched frontier scorer's parity rests on."""
    rng = random.Random(17)
    model = _linear(
        SIMILARITY_FEATURE_NAMES,
        [rng.uniform(-1, 1) for _ in SIMILARITY_FEATURE_NAMES],
        rng.uniform(-0.5, 0.5),
    )
    matrix = np.array([
        [rng.random() for _ in SIMILARITY_FEATURE_NAMES]
        for _ in range(64)
    ])
    batched = model.score_many(matrix)
    for row, batch_score in zip(matrix, batched):
        assert model.score(tuple(row)) == float(batch_score)


def test_batched_scorer_rejects_mismatched_model():
    """Feature-name drift between model and batcher fails fast."""
    model = _linear(("a", "b"), [0.1, 0.2], 0.0)
    scorer = RegressionSimilarityScorer(model, FeatureExtractor())
    traffic = DailyTraffic(0)
    try:
        BatchedSimilarityScorer(scorer, traffic, 86_400.0)
    except ValueError as err:
        assert "feature" in str(err)
    else:  # pragma: no cover - the assertion is the exception
        raise AssertionError("expected ValueError")


@pytest.mark.parity
def test_incremental_scorer_matches_additive_componentwise():
    """Spot-check raw scores (not just detections) against the legacy
    additive scorer under a growing malicious set."""
    for seed in range(6):
        rng = random.Random(2024 + seed)
        history = DestinationHistory()
        connections = _random_day_connections(rng, 0, with_http=False)
        traffic, rare = _aggregate(0, connections, history)
        if len(rare) < 4:
            continue
        ordered = sorted(rare)
        malicious_steps = [
            set(ordered[:1]), set(ordered[:2]), set(ordered[:3]),
        ]
        scorer = AdditiveSimilarityScorer()
        incremental = IncrementalAdditiveScorer(scorer, traffic)
        reported: set[str] = set()
        for malicious in malicious_steps:
            frontier = [d for d in ordered if d not in malicious]
            delta = malicious - reported
            fast = incremental.score_frontier(frontier, delta)
            reported |= delta
            for domain in frontier:
                expected = scorer.score(domain, malicious, traffic)
                assert fast[domain] == expected, (
                    f"seed {seed}: {domain} {fast[domain]} != {expected}"
                )
