"""Unit tests for the synthetic world primitives."""

import random

import pytest

from repro.intel import WhoisDatabase
from repro.logs.domains import is_valid_domain, same_subnet
from repro.synthetic import (
    BenignConfig,
    BenignWorkload,
    CampaignFactory,
    CampaignSpec,
    DomainNameFactory,
    IpAllocator,
    build_enterprise,
)


class TestIpAllocator:
    def test_benign_ips_valid_and_distinct_blocks(self):
        alloc = IpAllocator(seed=1)
        ips = [alloc.benign_ip() for _ in range(50)]
        blocks = {tuple(ip.split(".")[:3]) for ip in ips}
        assert len(blocks) == 50

    def test_attacker_block_colocates(self):
        alloc = IpAllocator(seed=2)
        block = alloc.attacker_block()
        a = alloc.ip_in_block(block)
        b = alloc.ip_in_block(block)
        assert same_subnet(a, b, 24)

    def test_sibling_block_shares_16_not_24(self):
        alloc = IpAllocator(seed=3)
        block = alloc.attacker_block()
        sibling = alloc.sibling_block_16(block)
        a = alloc.ip_in_block(block)
        b = alloc.ip_in_block(sibling)
        assert same_subnet(a, b, 16)
        assert not same_subnet(a, b, 24)

    def test_reserved_ranges_avoided(self):
        alloc = IpAllocator(seed=4)
        for _ in range(100):
            first_octet = int(alloc.benign_ip().split(".")[0])
            assert first_octet not in (10, 127, 172, 192)

    def test_internal_pools_distinct(self):
        alloc = IpAllocator()
        assert alloc.internal_static_ip(5).startswith("10.")
        assert alloc.dhcp_pool_ip(5).startswith("172.16.")
        assert alloc.vpn_pool_ip(5).startswith("192.168.")

    def test_deterministic_given_seed(self):
        a = IpAllocator(seed=9)
        b = IpAllocator(seed=9)
        assert [a.benign_ip() for _ in range(5)] == [b.benign_ip() for _ in range(5)]


class TestDomainNameFactory:
    def _factory(self, seed=0):
        return DomainNameFactory(random.Random(seed))

    def test_all_families_valid_names(self):
        factory = self._factory()
        for maker in (
            factory.benign, factory.benign_service, factory.attacker_ru,
            factory.attacker_org, factory.dga_short_info,
            factory.dga_hex_info, factory.lanl_anonymized, factory.lanl_benign,
        ):
            assert is_valid_domain(maker())

    def test_names_unique_across_families(self):
        factory = self._factory()
        names = [factory.benign() for _ in range(100)]
        names += [factory.dga_short_info() for _ in range(100)]
        assert len(set(names)) == len(names)

    def test_dga_short_info_shape(self):
        factory = self._factory()
        name = factory.dga_short_info()
        label, tld = name.rsplit(".", 1)
        assert tld == "info"
        assert len(label) in (4, 5)

    def test_dga_hex_info_shape(self):
        factory = self._factory()
        label, tld = factory.dga_hex_info().rsplit(".", 1)
        assert tld == "info"
        assert len(label) == 20
        assert all(c in "0123456789abcdef" for c in label)

    def test_attacker_ru_tld(self):
        assert self._factory().attacker_ru().endswith(".ru")

    def test_attacker_org_shape(self):
        label, tld = self._factory().attacker_org().rsplit(".", 1)
        assert tld == "org"
        assert len(label) in (15, 16)

    def test_deterministic(self):
        assert self._factory(7).benign() == self._factory(7).benign()


class TestBuildEnterprise:
    def test_fleet_size(self):
        model = build_enterprise(50, random.Random(0))
        assert len(model.hosts) == 50
        assert len(model.servers) == 4

    def test_hosts_have_popular_ua_pool(self):
        model = build_enterprise(30, random.Random(1))
        for host in model.hosts:
            assert 5 <= len(host.user_agents) <= 10

    def test_rare_uas_exist_and_are_scarce(self):
        model = build_enterprise(100, random.Random(2))
        assert model.rare_user_agents
        owners = [
            h for h in model.hosts
            if any(ua in model.rare_user_agents for ua in h.user_agents)
        ]
        assert 1 <= len(owners) <= 10

    def test_needs_at_least_one_host(self):
        with pytest.raises(ValueError):
            build_enterprise(0, random.Random(0))


class TestBenignWorkload:
    def _workload(self, n_hosts=20, seed=0):
        rng = random.Random(seed)
        model = build_enterprise(n_hosts, rng)
        return BenignWorkload(
            model,
            DomainNameFactory(rng),
            IpAllocator(seed=1),
            WhoisDatabase(),
            rng,
            BenignConfig(
                popular_domains=20, browsing_visits_per_host=5,
                churn_domains_per_day=5, popular_auto_services=2,
                rare_auto_services_per_day=1,
            ),
        )

    def test_visits_sorted_by_time(self):
        visits = self._workload().day_visits(0)
        times = [v.timestamp for v in visits]
        assert times == sorted(times)

    def test_visits_fall_within_day(self):
        visits = self._workload().day_visits(3)
        for visit in visits:
            assert 3 * 86_400.0 <= visit.timestamp < 5 * 86_400.0

    def test_popular_services_have_many_hosts(self):
        workload = self._workload()
        visits = workload.day_visits(0)
        service_domains = {
            v.domain for v in visits
            if v.domain.split("-")[0] in
            ("update", "sync", "cdn", "telemetry", "api", "feed")
        }
        assert service_domains
        for domain in service_domains:
            hosts = {v.host for v in visits if v.domain == domain}
            # popular services are fleet-wide; rare ones single-host
            assert len(hosts) >= 1

    def test_churn_produces_new_domains_each_day(self):
        workload = self._workload()
        day0 = {v.domain for v in workload.day_visits(0)}
        day1 = {v.domain for v in workload.day_visits(1)}
        assert day1 - day0  # fresh names appear

    def test_whois_populated(self):
        workload = self._workload()
        workload.day_visits(0)
        assert len(workload.whois) > 0


class TestCampaigns:
    def _factory(self, seed=0):
        rng = random.Random(seed)
        names = DomainNameFactory(rng)
        return CampaignFactory(names, IpAllocator(seed=1), WhoisDatabase(), rng), rng

    def _hosts(self, rng, n=10):
        return build_enterprise(n, rng).hosts

    def test_campaign_structure(self):
        factory, rng = self._factory()
        spec = CampaignSpec(n_hosts=3, n_delivery=2, n_cc=1)
        campaign = factory.create(5, self._hosts(rng), spec)
        assert len(campaign.hosts) == 3
        assert len(campaign.delivery_domains) == 2
        assert len(campaign.cc_domains) == 1
        assert set(campaign.domain_ips) == set(campaign.domains)

    def test_infrastructure_colocated(self):
        factory, rng = self._factory(seed=3)
        spec = CampaignSpec(n_hosts=2, n_delivery=4, n_cc=2)
        campaign = factory.create(5, self._hosts(rng), spec)
        ips = list(campaign.domain_ips.values())
        shared_16 = sum(
            1 for ip in ips[1:] if same_subnet(ips[0], ip, 16)
        )
        assert shared_16 == len(ips) - 1  # all in the attacker /16

    def test_attacker_registration_young(self):
        factory, rng = self._factory()
        spec = CampaignSpec()
        campaign = factory.create(10, self._hosts(rng), spec)
        for domain in campaign.domains:
            record = factory.whois.lookup(domain)
            assert record is not None
            age = record.age_days(10 * 86_400.0)
            assert 0 < age <= 31

    def test_unregistered_rate(self):
        factory, rng = self._factory()
        spec = CampaignSpec(n_delivery=10, unregistered_rate=1.0)
        campaign = factory.create(5, self._hosts(rng), spec)
        assert all(factory.whois.lookup(d) is None for d in campaign.domains)

    def test_beacon_visits_periodic(self):
        factory, rng = self._factory()
        spec = CampaignSpec(n_hosts=1, beacon_period=600.0, beacon_jitter=0.0)
        campaign = factory.create(2, self._hosts(rng), spec)
        visits = factory.day_visits(campaign, 2)
        cc = campaign.cc_domains[0]
        times = sorted(v.timestamp for v in visits if v.domain == cc)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps and all(abs(g - 600.0) < 1e-6 for g in gaps)

    def test_inactive_day_produces_nothing(self):
        factory, rng = self._factory()
        campaign = factory.create(5, self._hosts(rng), CampaignSpec(duration_days=1))
        assert factory.day_visits(campaign, 7) == []

    def test_multi_day_campaign_beacons_on_later_days(self):
        factory, rng = self._factory()
        spec = CampaignSpec(duration_days=3)
        campaign = factory.create(5, self._hosts(rng), spec)
        later = factory.day_visits(campaign, 6)
        assert later
        assert all(v.domain in campaign.cc_domains for v in later)

    def test_delivery_chain_tight_timing(self):
        factory, rng = self._factory()
        spec = CampaignSpec(n_hosts=1, n_delivery=3)
        campaign = factory.create(2, self._hosts(rng), spec)
        visits = factory.day_visits(campaign, 2)
        delivery_times = sorted(
            v.timestamp for v in visits if v.domain in campaign.delivery_domains
        )
        assert delivery_times[-1] - delivery_times[0] < 600.0

    def test_dga_cluster_minted(self):
        factory, rng = self._factory()
        spec = CampaignSpec(dga_style="short_info", dga_cluster=10)
        campaign = factory.create(3, self._hosts(rng), spec)
        assert len(campaign.dga_domains) == 10
        assert all(d.endswith(".info") for d in campaign.dga_domains)
