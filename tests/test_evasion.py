"""Evasion scenarios from Section VIII: what the detectors miss and
what still catches the campaign anyway."""

import random

import pytest

from repro.config import HistogramConfig
from repro.core.scoring import AdditiveSimilarityScorer
from repro.logs import Connection
from repro.profiling import DailyTraffic
from repro.synthetic import CampaignFactory, CampaignSpec, DomainNameFactory, IpAllocator, build_enterprise
from repro.intel import WhoisDatabase
from repro.timing import AutomationDetector


def randomized_campaign(seed=5):
    """A campaign whose beacons are fully randomized (jitter ~ period)."""
    rng = random.Random(seed)
    names = DomainNameFactory(rng)
    factory = CampaignFactory(names, IpAllocator(seed=1), WhoisDatabase(), rng)
    hosts = build_enterprise(10, rng).hosts
    spec = CampaignSpec(
        n_hosts=2, n_delivery=2, n_cc=1,
        beacon_period=600.0, beacon_jitter=550.0,  # near-full randomization
    )
    campaign = factory.create(0, hosts, spec)
    return factory, campaign


class TestRandomizedBeacons:
    def test_timing_detector_misses_randomized_cc(self):
        """The acknowledged limitation: fully randomized beacons evade
        the dynamic-histogram detector (Section VIII)."""
        factory, campaign = randomized_campaign()
        visits = factory.day_visits(campaign, 0)
        cc = campaign.cc_domains[0]
        detector = AutomationDetector(HistogramConfig())
        for host in campaign.host_names:
            times = sorted(
                v.timestamp for v in visits
                if v.domain == cc and v.host == host
            )
            verdict = detector.test_series(host, cc, times)
            assert not verdict.automated

    def test_similarity_path_still_reaches_randomized_cc(self):
        """Belief propagation's similarity scoring is timing-pattern
        agnostic: with a hint, the randomized C&C is still labeled via
        delivery-stage correlation (same hosts, close first visits,
        shared /24)."""
        factory, campaign = randomized_campaign()
        visits = factory.day_visits(campaign, 0)
        traffic = DailyTraffic(0)
        traffic.ingest(
            Connection(
                timestamp=v.timestamp, host=v.host, domain=v.domain,
                resolved_ip=v.resolved_ip, user_agent=v.user_agent,
                referer=v.referer,
            )
            for v in visits
        )
        traffic.finalize()
        scorer = AdditiveSimilarityScorer()
        cc = campaign.cc_domains[0]
        delivery = set(campaign.delivery_domains)
        score = scorer.score(cc, delivery, traffic)
        assert score >= 0.25  # clears the LANL threshold Ts

    def test_small_jitter_does_not_evade(self):
        """Contrast: the realistic small-jitter attacker is caught."""
        rng = random.Random(7)
        names = DomainNameFactory(rng)
        factory = CampaignFactory(names, IpAllocator(seed=2), WhoisDatabase(), rng)
        hosts = build_enterprise(10, rng).hosts
        spec = CampaignSpec(n_hosts=1, beacon_period=600.0, beacon_jitter=4.0)
        campaign = factory.create(0, hosts, spec)
        visits = factory.day_visits(campaign, 0)
        cc = campaign.cc_domains[0]
        host = campaign.host_names[0]
        times = sorted(v.timestamp for v in visits if v.domain == cc)
        assert AutomationDetector().test_series(host, cc, times).automated


class TestUnregisteredDga:
    def test_unregistered_domains_get_imputed_age(self):
        """Section VI-D: DGA domains observed before registration must
        flow through the imputation path, not crash."""
        from repro.features import WhoisFeatureExtractor

        rng = random.Random(9)
        names = DomainNameFactory(rng)
        whois = WhoisDatabase()
        factory = CampaignFactory(names, IpAllocator(seed=3), whois, rng)
        hosts = build_enterprise(5, rng).hosts
        spec = CampaignSpec(dga_style="hex_info", dga_cluster=5,
                            unregistered_rate=1.0)
        campaign = factory.create(0, hosts, spec)
        extractor = WhoisFeatureExtractor(whois)
        for domain in campaign.dga_domains:
            features = extractor.extract(domain, when=86_400.0)
            assert features.imputed
            assert 0.0 <= features.dom_age <= 1.0
