"""Tests for the multi-tenant fleet subsystem (repro.fleet).

The load-bearing properties: serial and parallel execution produce
identical per-tenant detections (day-barrier seeding); one tenant's
traffic never leaks into another's profiles; the shared intel plane
counts cross-tenant cache hits and seeds follower tenants with the
lead's confirmations; and a checkpointed fleet resumes to the exact
uninterrupted outcome.
"""

import json
from pathlib import Path

import pytest

from repro.fleet import (
    FleetError,
    FleetManager,
    IntelPlane,
    ManifestError,
    TenantSpec,
    load_manifest,
)
from repro.intel import VirusTotalOracle, WhoisDatabase
from repro.synthetic import write_fleet_layout
from repro.testing import make_multi_enterprise_dataset

N_TENANTS = 3
DAYS = 4


@pytest.fixture(scope="module")
def fleet_dataset():
    return make_multi_enterprise_dataset(N_TENANTS)


@pytest.fixture(scope="module")
def fleet_layout(fleet_dataset, tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("fleet")
    return write_fleet_layout(fleet_dataset, directory, days=DAYS)


@pytest.fixture(scope="module")
def serial_report(fleet_layout):
    manifest = load_manifest(fleet_layout)
    return FleetManager.from_manifest(manifest, workers=1).run()


def _detections(report):
    return {t: sorted(d) for t, d in report.detected_by_tenant().items()}


# ---------------------------------------------------------------------------
# Intel plane
# ---------------------------------------------------------------------------

class TestIntelPlane:
    def test_vt_cache_counts_cross_tenant_hits(self):
        plane = IntelPlane(vt=VirusTotalOracle(["evil.c9"], coverage=1.0))
        assert plane.vt_reported("a", "evil.c9") is True
        assert plane.vt_cache.stats.misses == 1
        assert plane.vt_reported("a", "evil.c9") is True
        assert plane.vt_cache.stats.cross_tenant_hits == 0
        assert plane.vt_reported("b", "evil.c9") is True
        assert plane.vt_cache.stats.hits == 2
        assert plane.vt_cache.stats.cross_tenant_hits == 1

    def test_whois_cache_shared(self):
        whois = WhoisDatabase()
        whois.register("young.c9", 0.0, 86_400.0 * 365)
        plane = IntelPlane(whois=whois)
        assert plane.whois_lookup("a", "young.c9") is not None
        assert plane.whois_lookup("b", "young.c9") is not None
        assert plane.whois_lookup("b", "absent.c9") is None
        assert plane.whois_cache.stats.cross_tenant_hits == 1

    def test_lookup_without_oracle_still_cached(self):
        plane = IntelPlane()
        assert plane.vt_reported("a", "x.c9") is None
        assert plane.vt_reported("b", "x.c9") is None
        assert plane.vt_cache.stats.cross_tenant_hits == 1

    def test_board_excludes_own_findings_and_low_scores(self):
        plane = IntelPlane(prior_threshold=0.4)
        plane.publish("a", 1, [("cc.c9", 1.0), ("weak.c9", 0.2)])
        assert plane.seeds_for("b") == {"cc.c9"}
        assert plane.seeds_for("a") == frozenset()
        # Once a second tenant confirms it, everyone is seeded.
        plane.publish("b", 2, [("cc.c9", 1.0)])
        assert plane.seeds_for("a") == {"cc.c9"}
        entry = plane.board["cc.c9"]
        assert entry.tenants == {"a", "b"}
        assert entry.first_day == 1

    def test_encode_restore_round_trip(self):
        plane = IntelPlane(vt=VirusTotalOracle(["evil.c9"], coverage=1.0))
        plane.publish("a", 0, [("evil.c9", 1.0)])
        plane.vt_reported("a", "evil.c9")
        plane.vt_reported("b", "evil.c9")
        restored = IntelPlane(vt=plane.vt)
        restored.restore(plane.encode())
        assert restored.seeds_for("b") == {"evil.c9"}
        assert restored.vt_cache.stats.cross_tenant_hits == 1
        # The cached verdict (and its owner) survived.
        restored.vt_reported("c", "evil.c9")
        assert restored.vt_cache.stats.cross_tenant_hits == 2
        assert restored.vt_cache.stats.misses == 1


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------

class TestManifest:
    def test_loads_generated_layout(self, fleet_layout):
        manifest = load_manifest(fleet_layout)
        assert [t.tenant_id for t in manifest.tenants] == ["t0", "t1", "t2"]
        assert all(t.directory.is_dir() for t in manifest.tenants)
        assert manifest.vt_reported

    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="not found"):
            load_manifest(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            load_manifest(path)

    def test_missing_tenants(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"version": 1, "tenants": []}))
        with pytest.raises(ManifestError, match="non-empty"):
            load_manifest(path)

    def test_duplicate_tenant_ids(self, tmp_path):
        (tmp_path / "logs").mkdir()
        path = tmp_path / "m.json"
        entry = {"id": "a", "directory": "logs"}
        path.write_text(json.dumps({"tenants": [entry, entry]}))
        with pytest.raises(ManifestError, match="duplicate"):
            load_manifest(path)

    def test_missing_directory(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(
            {"tenants": [{"id": "a", "directory": "absent"}]}
        ))
        with pytest.raises(ManifestError, match="directory not found"):
            load_manifest(path)

    def test_string_filters_rejected(self, tmp_path):
        # A bare string would iterate per-character into the funnel.
        (tmp_path / "logs").mkdir()
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"tenants": [{
            "id": "a", "directory": "logs", "internal_suffixes": "int.c0",
        }]}))
        with pytest.raises(ManifestError, match="list of strings"):
            load_manifest(path)


# ---------------------------------------------------------------------------
# Fleet runs
# ---------------------------------------------------------------------------

class TestFleetRun:
    def test_every_tenant_detects_its_own_campaigns(
        self, serial_report, fleet_dataset
    ):
        detected = _detections(serial_report)
        for tenant_id, dataset in fleet_dataset.tenants.items():
            for march_date in range(2, DAYS + 1):
                truth = dataset.campaign_for_date(march_date)
                assert set(truth.cc_domains) <= set(detected[tenant_id])

    def test_lead_detects_shared_campaign_locally(
        self, serial_report, fleet_dataset
    ):
        shared = fleet_dataset.shared
        lead = fleet_dataset.lead_tenant
        lead_days = serial_report.days_for(lead)
        day = next(d for d in lead_days if set(shared.cc_domains) & d.cc_domains)
        # Found by the multi-host heuristic, not by seeding.
        assert not day.intel_seeded
        assert set(shared.domains) <= set(day.detected)

    def test_followers_detect_only_through_seeding(
        self, serial_report, fleet_dataset
    ):
        shared = fleet_dataset.shared
        for follower in fleet_dataset.follower_tenants:
            days = serial_report.days_for(follower)
            seeded_days = [d for d in days if d.intel_seeded]
            assert len(seeded_days) == 1
            day = seeded_days[0]
            # One beaconing host stays below the C&C heuristic; the
            # shared domains arrive as elevated priors instead.
            assert set(shared.domains) <= day.intel_seeded
            assert set(shared.domains) <= set(day.detected)
            assert not set(shared.cc_domains) & day.cc_domains

    def test_cross_tenant_overlap_and_cache_hits(self, serial_report, fleet_dataset):
        overlap = dict(serial_report.overlap())
        for domain in fleet_dataset.shared.domains:
            assert overlap[domain] == ("t0", "t1", "t2")
        assert serial_report.intel.vt_cache.stats.cross_tenant_hits > 0

    def test_tenant_isolation(self, serial_report, fleet_dataset, fleet_layout):
        # A domain unique to one tenant's world must never surface in
        # another tenant's detections, and parallel execution must keep
        # per-tenant histories disjoint from other tenants' traffic.
        detected = _detections(serial_report)
        manifest = load_manifest(fleet_layout)
        manager = FleetManager.from_manifest(manifest, workers=N_TENANTS)
        manager.run()
        for tenant_id, dataset in fleet_dataset.tenants.items():
            own = {
                domain
                for truth in dataset.campaigns
                if truth.march_date <= DAYS
                for domain in truth.malicious_domains
            }
            for other_id in fleet_dataset.tenants:
                if other_id == tenant_id:
                    continue
                assert not own & set(detected[other_id])
                history = manager.engines[other_id].history
                assert not any(not history.is_new(d) for d in own)

    def test_serial_parallel_parity(self, fleet_layout, serial_report):
        manifest = load_manifest(fleet_layout)
        parallel = FleetManager.from_manifest(manifest, workers=3).run()
        assert _detections(parallel) == _detections(serial_report)

    def test_process_executor_parity(self, fleet_layout, serial_report, tmp_path):
        manifest = load_manifest(fleet_layout)
        report = FleetManager.from_manifest(
            manifest, workers=2, executor="process",
            checkpoint_dir=tmp_path / "ckpt",
        ).run()
        assert _detections(report) == _detections(serial_report)

    def test_rejects_bad_configuration(self, fleet_layout, tmp_path):
        manifest = load_manifest(fleet_layout)
        with pytest.raises(FleetError, match="at least one tenant"):
            FleetManager([])
        with pytest.raises(FleetError, match="workers"):
            FleetManager.from_manifest(manifest, workers=0)
        with pytest.raises(FleetError, match="executor"):
            FleetManager.from_manifest(manifest, executor="greenlet")
        with pytest.raises(FleetError, match="resume requires"):
            FleetManager.from_manifest(manifest, resume=True)
        with pytest.raises(FleetError, match="no fleet checkpoint"):
            FleetManager.from_manifest(
                manifest, resume=True, checkpoint_dir=tmp_path / "empty"
            ).run()

    def test_too_few_files(self, tmp_path):
        logs = tmp_path / "logs"
        logs.mkdir()
        (logs / "dns-march-01.log").write_text("")
        spec = TenantSpec(tenant_id="a", directory=logs, bootstrap_files=1)
        with pytest.raises(FleetError, match="need more than 1"):
            FleetManager([spec]).run()


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------

class TestFleetCheckpoint:
    @pytest.mark.parametrize("executor", ["thread", "process", "resident"])
    def test_interrupt_resume_matches_full_run(
        self, fleet_layout, serial_report, tmp_path, executor
    ):
        manifest = load_manifest(fleet_layout)
        ckpt = tmp_path / f"ckpt-{executor}"
        first = FleetManager.from_manifest(
            manifest, workers=2, executor=executor, checkpoint_dir=ckpt,
        ).run(max_rounds=2)
        assert first.interrupted
        second = FleetManager.from_manifest(
            manifest, workers=2, executor=executor,
            checkpoint_dir=ckpt, resume=True,
        ).run()
        assert not second.interrupted
        combined = {}
        for day in first.days + second.days:
            combined.setdefault(day.tenant_id, []).extend(day.detected)
        assert {t: sorted(d) for t, d in combined.items()} == _detections(
            serial_report
        )

    def test_resume_restores_intel_board(self, fleet_layout, tmp_path):
        manifest = load_manifest(fleet_layout)
        ckpt = tmp_path / "ckpt"
        FleetManager.from_manifest(
            manifest, checkpoint_dir=ckpt,
        ).run(max_rounds=2)  # through the lead tenant's detection day
        resumed = FleetManager.from_manifest(
            manifest, checkpoint_dir=ckpt, resume=True,
        )
        assert resumed.intel.board == {}
        report = resumed.run()
        # Followers were seeded from the board restored off disk.
        assert report.seeded_detections() > 0

    def test_fresh_run_clears_stale_fleet_state(self, fleet_layout, tmp_path):
        manifest = load_manifest(fleet_layout)
        ckpt = tmp_path / "ckpt"
        FleetManager.from_manifest(manifest, checkpoint_dir=ckpt).run()
        stale = json.loads((ckpt / "fleet.json").read_text())
        assert stale["rounds"] == DAYS
        # A fresh (non-resume) run into the same directory must not
        # leave the old cursor/board around to poison a later --resume.
        first = FleetManager.from_manifest(
            manifest, checkpoint_dir=ckpt,
        ).run(max_rounds=1)
        assert first.interrupted
        assert json.loads((ckpt / "fleet.json").read_text())["rounds"] == 1
        second = FleetManager.from_manifest(
            manifest, checkpoint_dir=ckpt, resume=True,
        ).run()
        assert second.rounds == DAYS

    def test_missing_tenant_checkpoint(self, fleet_layout, tmp_path):
        manifest = load_manifest(fleet_layout)
        ckpt = tmp_path / "ckpt"
        FleetManager.from_manifest(
            manifest, checkpoint_dir=ckpt,
        ).run(max_rounds=1)
        (ckpt / "t1" / "checkpoint.json").unlink()
        with pytest.raises(FleetError, match="no checkpoint for tenant 't1'"):
            FleetManager.from_manifest(
                manifest, checkpoint_dir=ckpt, resume=True,
            ).run()

    def test_wrong_kind_tenant_checkpoint(self, fleet_layout, tmp_path):
        manifest = load_manifest(fleet_layout)
        ckpt = tmp_path / "ckpt"
        FleetManager.from_manifest(
            manifest, checkpoint_dir=ckpt,
        ).run(max_rounds=1)
        (ckpt / "t1" / "checkpoint.json").write_text(
            json.dumps({"version": 1, "kind": "streaming"})
        )
        with pytest.raises(FleetError, match="not a fleet tenant checkpoint"):
            FleetManager.from_manifest(
                manifest, checkpoint_dir=ckpt, resume=True,
            ).run()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestFleetCommand:
    def test_generate_and_run_with_parity(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fleet"
        assert main([
            "generate", str(out), "--tenants", "3", "--hosts", "40",
            "--days", "4", "--seed", "11",
        ]) == 0
        capsys.readouterr()

        manifest = str(out / "manifest.json")
        assert main(["fleet", manifest, "--workers", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["fleet", manifest, "--workers", "3"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
        assert "Fleet detection report" in serial_out
        assert "cross-tenant" in serial_out

    def test_json_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fleet"
        main(["generate", str(out), "--tenants", "2", "--hosts", "40",
              "--days", "3", "--seed", "3"])
        report_path = tmp_path / "report.json"
        assert main([
            "fleet", str(out / "manifest.json"), "--json", str(report_path),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(report_path.read_text())
        assert set(payload["tenants"]) == {"t0", "t1"}
        assert payload["intel"]["vt"]["misses"] > 0

    def test_bad_manifest_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fleet", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err

    def test_generate_rejects_bad_tenant_combos(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "f")
        assert main(["generate", out, "--tenants", "2", "--netflow"]) == 2
        assert "netflow" in capsys.readouterr().err
        assert main(["generate", out, "--tenants", "2", "--days", "2"]) == 2
        assert "--days >= 3" in capsys.readouterr().err

    def test_resume_without_checkpoint_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fleet"
        main(["generate", str(out), "--tenants", "2", "--hosts", "40",
              "--days", "3"])
        capsys.readouterr()
        assert main([
            "fleet", str(out / "manifest.json"), "--resume",
        ]) == 2
        assert "resume requires" in capsys.readouterr().err

    def test_interrupted_exits_3(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fleet"
        main(["generate", str(out), "--tenants", "2", "--hosts", "40",
              "--days", "3"])
        ckpt = tmp_path / "ckpt"
        assert main([
            "fleet", str(out / "manifest.json"),
            "--checkpoint-dir", str(ckpt), "--max-rounds", "1",
        ]) == 3
        assert "resume with --resume" in capsys.readouterr().out

    def test_stream_bad_directory_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["stream", str(tmp_path / "absent")]) == 2
        assert capsys.readouterr().err.startswith("error: ")
        assert main([
            "stream", str(tmp_path), "--resume",
        ]) == 2
        assert "requires --checkpoint" in capsys.readouterr().err

    def test_run_bad_directory_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["run", str(tmp_path / "absent")]) == 2
        assert capsys.readouterr().err.startswith("error: ")


# ---------------------------------------------------------------------------
# Mixed-pipeline fleets (DNS + enterprise tenants)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def mixed_dataset():
    """3 tenants: DNS lead + DNS follower + enterprise follower."""
    return make_multi_enterprise_dataset(3, enterprise_tenants=1)


@pytest.fixture(scope="module")
def mixed_layout(mixed_dataset, tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("mixedfleet")
    return write_fleet_layout(mixed_dataset, directory, days=DAYS)


@pytest.fixture(scope="module")
def mixed_serial(mixed_layout):
    manifest = load_manifest(mixed_layout)
    return FleetManager.from_manifest(manifest, workers=1).run()


class TestMixedManifest:
    def test_layout_declares_pipelines(self, mixed_layout):
        manifest = load_manifest(mixed_layout)
        by_id = {t.tenant_id: t for t in manifest.tenants}
        assert by_id["t0"].pipeline == "dns"
        assert by_id["t2"].pipeline == "enterprise"
        assert by_id["t2"].model_state is not None
        assert by_id["t2"].model_state.is_file()
        assert by_id["t2"].pattern == "proxy-*.log"
        assert manifest.whois is not None
        assert manifest.whois_path is not None

    def test_unknown_pipeline_rejected(self, tmp_path):
        (tmp_path / "logs").mkdir()
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"tenants": [
            {"id": "a", "directory": "logs", "pipeline": "netflow"},
        ]}))
        with pytest.raises(ManifestError, match="unknown pipeline"):
            load_manifest(path)

    def test_enterprise_requires_model_state(self, tmp_path):
        (tmp_path / "logs").mkdir()
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"tenants": [
            {"id": "a", "directory": "logs", "pipeline": "enterprise"},
        ]}))
        with pytest.raises(ManifestError, match="requires 'model_state'"):
            load_manifest(path)

    def test_model_state_rejected_on_dns_path(self, tmp_path):
        (tmp_path / "logs").mkdir()
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"tenants": [
            {"id": "a", "directory": "logs", "model_state": "model.json"},
        ]}))
        with pytest.raises(ManifestError, match="only valid"):
            load_manifest(path)

    def test_missing_whois_file(self, tmp_path):
        (tmp_path / "logs").mkdir()
        path = tmp_path / "m.json"
        path.write_text(json.dumps({
            "whois": "absent.json",
            "tenants": [{"id": "a", "directory": "logs"}],
        }))
        with pytest.raises(ManifestError, match="whois file not found"):
            load_manifest(path)


class TestMixedFleetRun:
    def test_cross_pipeline_seeding_detects_shared_campaign(
        self, mixed_serial, mixed_dataset
    ):
        # The enterprise follower sees ONE beaconing host -- below the
        # regression C&C evidence its local model fires on -- so only
        # the DNS lead's confirmation, crossing pipeline types through
        # the intel plane, can surface the shared campaign there.
        shared = mixed_dataset.shared
        assert mixed_dataset.pipeline_of("t2") == "enterprise"
        seeded_days = [
            d for d in mixed_serial.days_for("t2") if d.intel_seeded
        ]
        assert len(seeded_days) == 1
        day = seeded_days[0]
        assert set(shared.domains) <= day.intel_seeded
        assert set(shared.domains) <= set(day.detected)
        assert not set(shared.cc_domains) & day.cc_domains

    def test_enterprise_tenant_detects_own_campaigns(
        self, mixed_serial, mixed_dataset
    ):
        dataset = mixed_dataset.tenants["t2"]
        first = dataset.config.bootstrap_days
        detected = set(mixed_serial.detected_by_tenant()["t2"])
        local = {
            domain
            for campaign in dataset.campaigns
            # Layout day k holds operation day first + (k - 1); with
            # one bootstrap file, detection covers days first+1 .. 
            for day in campaign.active_days
            if first + 1 <= day < first + DAYS
            for domain in campaign.domains
        }
        assert local & detected

    def test_whois_columns_cover_shared_campaign(
        self, mixed_serial, mixed_dataset
    ):
        facts = mixed_serial.whois_facts
        for domain in mixed_dataset.shared.domains:
            assert facts.get(domain) is not None
            age_days, validity_days = facts[domain]
            assert 0.0 < age_days < 10.0
            assert validity_days > 90.0
        rendered = mixed_serial.render()
        assert "WHOIS registration" in rendered
        payload = mixed_serial.as_dict()
        sample = payload["whois"][sorted(mixed_dataset.shared.domains)[0]]
        assert sample["age_days"] == pytest.approx(
            facts[sorted(mixed_dataset.shared.domains)[0]][0]
        )

    def test_serial_parallel_parity(self, mixed_layout, mixed_serial):
        manifest = load_manifest(mixed_layout)
        parallel = FleetManager.from_manifest(manifest, workers=3).run()
        assert _detections(parallel) == _detections(mixed_serial)

    def test_process_interrupt_resume_matches_serial(
        self, mixed_layout, mixed_serial, tmp_path
    ):
        # The acceptance scenario: a mixed-pipeline fleet interrupted
        # mid-run resumes from per-tenant checkpoints (enterprise
        # engines restored with their trained models and the shared
        # WHOIS registry) to the uninterrupted outcome.
        manifest = load_manifest(mixed_layout)
        ckpt = tmp_path / "ckpt"
        first = FleetManager.from_manifest(
            manifest, workers=2, executor="process", checkpoint_dir=ckpt,
        ).run(max_rounds=2)
        assert first.interrupted
        second = FleetManager.from_manifest(
            manifest, workers=2, executor="process",
            checkpoint_dir=ckpt, resume=True,
        ).run()
        assert not second.interrupted
        combined = {}
        for day in first.days + second.days:
            combined.setdefault(day.tenant_id, []).extend(day.detected)
        assert {t: sorted(d) for t, d in combined.items()} == _detections(
            mixed_serial
        )

    def test_whois_lookups_count_cross_tenant_hits(self, mixed_serial):
        stats = mixed_serial.intel.whois_cache.stats
        assert stats.misses > 0

    def test_crash_recovery_carries_enterprise_round(
        self, mixed_layout, mixed_serial, tmp_path
    ):
        # Crash window: a tenant's checkpoint is written for round k
        # but the fleet never commits round k.  Rewinding fleet.json
        # simulates it; on resume the uncommitted round's reports must
        # be re-published once -- including the enterprise tenant's,
        # whose engine day differs from the round number.
        manifest = load_manifest(mixed_layout)
        ckpt = tmp_path / "ckpt"
        FleetManager.from_manifest(
            manifest, checkpoint_dir=ckpt,
        ).run(max_rounds=2)
        state = json.loads((ckpt / "fleet.json").read_text())
        assert state["rounds"] == 2
        state["rounds"] = 1
        (ckpt / "fleet.json").write_text(json.dumps(state))

        resumed = FleetManager.from_manifest(
            manifest, checkpoint_dir=ckpt, resume=True,
        ).run()
        recovered = [d for d in resumed.days if d.tenant_id == "t2"]
        # Round 1 (the rewound one) is re-published from the carried
        # checkpoint; rounds 2..N run live.  No round is lost or doubled.
        assert len(recovered) == DAYS - 1
        assert len({d.day for d in recovered}) == len(recovered)
        combined = {}
        serial_days = {
            (d.tenant_id, d.day): d.detected for d in mixed_serial.days
        }
        for day in resumed.days:
            assert day.detected == serial_days[(day.tenant_id, day.day)]
