"""Parity property tests: columnar/vectorized paths vs legacy scalar.

The columnar hot core (NumPy-backed :class:`repro.profiling.DailyTraffic`,
vectorized timing in :mod:`repro.timing.batch`, batched C&C features)
promises *bit-identical* results to the scalar implementations it
replaced.  These hypothesis tests pin that promise on randomized
inputs, explicitly covering the degenerate shapes the fast paths
special-case: empty series, single-event series, and
duplicate-timestamp series (zero intervals).

Every test here carries the ``parity`` marker (``pytest -m parity``
runs the whole legacy-vs-columnar equivalence group, see
``tests/conftest.py``).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs.records import Connection, ConnectionBatch
from repro.profiling.rare import _SMALL_SPAN, DailyTraffic
from repro.timing.batch import (
    assign_interval_array,
    automated_pairs_batch,
    intervals_array,
    jeffrey_divergence_array,
    l1_distance_array,
)
from repro.timing.detector import AutomationDetector
from repro.timing.divergence import (
    jeffrey_divergence,
    l1_distance,
    periodic_reference,
)
from repro.timing.histogram import assign_interval, build_histogram, intervals

pytestmark = pytest.mark.parity

# Mixing fine-grained floats with a coarse integer grid makes
# duplicate timestamps (and therefore zero intervals) common instead
# of vanishingly rare; ``min_size=0`` keeps empty and single-event
# series in every strategy's reachable set.
fine_times = st.floats(
    min_value=0.0, max_value=86_400.0, allow_nan=False, allow_infinity=False
)
coarse_times = st.integers(min_value=0, max_value=40).map(float)
timestamp_series = st.lists(
    st.one_of(fine_times, coarse_times), min_size=0, max_size=50
).map(sorted)

positive_floats = st.floats(
    min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
)
interval_lists = st.lists(
    st.one_of(positive_floats, st.integers(0, 12).map(float)),
    min_size=0,
    max_size=60,
)
bin_widths = st.floats(min_value=0.01, max_value=1e4)


class TestVectorizedTimingParity:
    @given(timestamp_series)
    def test_intervals_matches_scalar(self, times):
        assert intervals_array(times).tolist() == intervals(times)

    @given(timestamp_series)
    def test_unsorted_raises_in_both(self, times):
        if len(set(times)) < 2:
            return  # reversing an all-equal series is still sorted
        shuffled = sorted(times, reverse=True)
        with pytest.raises(ValueError):
            intervals(shuffled)
        with pytest.raises(ValueError):
            intervals_array(shuffled)

    @given(interval_lists, bin_widths)
    def test_assign_interval_matches_scalar(self, values, width):
        """Interleaved cluster builds stay in lockstep: same joined
        index per interval, same final (hubs, counts) state."""
        hubs_s: list[float] = []
        counts_s: list[int] = []
        hubs_a: list[float] = []
        counts_a: list[int] = []
        for value in values:
            index_s = assign_interval(hubs_s, counts_s, value, width)
            index_a = assign_interval_array(hubs_a, counts_a, value, width)
            assert index_a == index_s
        assert hubs_a == hubs_s
        assert counts_a == counts_s

    @given(interval_lists, bin_widths)
    def test_divergences_match_scalar(self, values, width):
        histogram = build_histogram(values, width)
        reference = periodic_reference(histogram) if histogram.bins else {}
        assert jeffrey_divergence_array(histogram, reference) == \
            jeffrey_divergence(histogram, reference)
        assert l1_distance_array(histogram, reference) == \
            l1_distance(histogram, reference)

    @given(interval_lists, bin_widths, positive_floats)
    def test_divergences_match_on_reference_only_hubs(
        self, values, width, extra_mass
    ):
        """A reference hub absent from the observed histogram exercises
        the alignment rows the periodic reference never produces."""
        histogram = build_histogram(values, width)
        hubs = {b.hub for b in histogram.bins}
        foreign = max(hubs, default=0.0) + 3.0 * width + 1.0
        reference = dict(
            periodic_reference(histogram) if histogram.bins else {}
        )
        reference[foreign] = extra_mass
        assert jeffrey_divergence_array(histogram, reference) == \
            jeffrey_divergence(histogram, reference)
        assert l1_distance_array(histogram, reference) == \
            l1_distance(histogram, reference)

    @given(st.lists(timestamp_series, min_size=0, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_automated_pairs_matches_scalar(self, series_list):
        detector = AutomationDetector()
        series = [
            ((f"host{i}", f"d{i}.example"), times)
            for i, times in enumerate(series_list)
        ]
        assert automated_pairs_batch(detector, series) == \
            detector.automated_pairs_scalar(series)


# A small pool of hosts/domains makes (host, domain) collisions -- the
# interesting merge cases -- frequent within a 60-event day.
_HOSTS = ("10.1.0.1", "10.1.0.2", "10.1.0.3")
_DOMAINS = ("a.example", "b.example", "c.example", "d.example")
_IPS = ("198.51.100.7", "203.0.113.9", "")

event_rows = st.lists(
    st.tuples(
        st.one_of(fine_times, coarse_times),
        st.sampled_from(_HOSTS),
        st.sampled_from(_DOMAINS),
        st.sampled_from(_IPS),
    ),
    min_size=0,
    max_size=60,
)


def _assert_same_traffic(left: DailyTraffic, right: DailyTraffic) -> None:
    assert dict(left.timestamps.items()) == dict(right.timestamps.items())
    assert left.hosts_by_domain == right.hosts_by_domain
    assert left.domains_by_host == right.domains_by_host
    assert left.resolved_ips == right.resolved_ips


class TestColumnarIngestParity:
    @given(event_rows, st.integers(min_value=1, max_value=9), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_chunked_ingest_matches_single_pass(
        self, rows, chunk, batch_first
    ):
        """One bulk ingest == per-record ingest == mixed chunked ingest
        (alternating columnar batches and scalar records)."""
        whole = DailyTraffic(0)
        whole.ingest([Connection(*row) for row in rows])
        whole.finalize()

        single = DailyTraffic(0)
        for row in rows:
            single.ingest(Connection(*row))
        single.finalize()

        mixed = DailyTraffic(0)
        for index, lo in enumerate(range(0, len(rows), chunk)):
            part = rows[lo:lo + chunk]
            if batch_first == (index % 2 == 0):
                mixed.ingest(ConnectionBatch(
                    [r[0] for r in part],
                    [r[1] for r in part],
                    [r[2] for r in part],
                    [r[3] for r in part],
                ))
            else:
                for row in part:
                    mixed.ingest(Connection(*row))
        mixed.finalize()

        _assert_same_traffic(whole, single)
        _assert_same_traffic(whole, mixed)

    def test_finalize_paths_agree_across_small_span_boundary(self):
        """Spans above ``_SMALL_SPAN`` group via NumPy lexsort, spans
        below via the pure-Python dict pass -- one day built each way
        must be identical."""
        rng = random.Random(20150614)
        n = _SMALL_SPAN + 512
        rows = [
            (
                float(rng.randrange(0, 86_400)),
                rng.choice(_HOSTS),
                rng.choice(_DOMAINS),
                rng.choice(_IPS),
            )
            for _ in range(n)
        ]

        lexsorted = DailyTraffic(0)
        lexsorted.ingest(ConnectionBatch(
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
            [r[3] for r in rows],
        ))
        lexsorted.finalize()

        grouped = DailyTraffic(0)
        for lo in range(0, n, 256):
            grouped.ingest([Connection(*row) for row in rows[lo:lo + 256]])
        grouped.finalize()

        _assert_same_traffic(lexsorted, grouped)
