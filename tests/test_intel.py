"""Unit tests for the intelligence substrates (VT oracle, IOC list)."""

import pytest

from repro.intel import IocList, VirusTotalOracle


class TestVirusTotalOracle:
    def test_full_coverage_reports_all(self):
        oracle = VirusTotalOracle(["a.com", "b.com"], coverage=1.0)
        assert oracle.is_reported("a.com")
        assert oracle.is_reported("b.com")

    def test_zero_coverage_reports_none(self):
        oracle = VirusTotalOracle(["a.com", "b.com"], coverage=0.0)
        assert not oracle.is_reported("a.com")

    def test_partial_coverage_deterministic(self):
        domains = [f"dom{i}.ru" for i in range(100)]
        a = VirusTotalOracle(domains, coverage=0.6, seed=5)
        b = VirusTotalOracle(domains, coverage=0.6, seed=5)
        assert a.reported_domains == b.reported_domains
        assert 30 <= len(a.reported_domains) <= 90

    def test_ground_truth_independent_of_coverage(self):
        oracle = VirusTotalOracle(["a.com"], coverage=0.0)
        assert oracle.is_malicious("a.com")
        assert not oracle.is_malicious("benign.com")

    def test_benign_never_reported_without_fp_rate(self):
        oracle = VirusTotalOracle(["mal.com"], ["ok.com"], coverage=1.0)
        assert not oracle.is_reported("ok.com")

    def test_false_report_rate(self):
        benign = [f"ok{i}.com" for i in range(200)]
        oracle = VirusTotalOracle([], benign, false_report_rate=0.5, seed=1)
        reported = sum(oracle.is_reported(d) for d in benign)
        assert 50 <= reported <= 150

    def test_label_strings(self):
        oracle = VirusTotalOracle(["a.com"], coverage=1.0)
        assert oracle.label("a.com") == "reported"
        assert oracle.label("b.com") == "legitimate"

    def test_invalid_coverage_rejected(self):
        with pytest.raises(ValueError):
            VirusTotalOracle([], coverage=1.5)

    def test_invalid_fp_rate_rejected(self):
        with pytest.raises(ValueError):
            VirusTotalOracle([], false_report_rate=-0.1)


class TestIocList:
    def test_membership(self):
        ioc = IocList(["evil.ru"])
        assert "evil.ru" in ioc
        assert "ok.com" not in ioc

    def test_add(self):
        ioc = IocList()
        ioc.add("new.ru")
        assert "new.ru" in ioc
        assert len(ioc) == 1

    def test_seeds_deterministic_order(self):
        ioc = IocList(["b.ru", "a.ru", "c.ru"])
        assert ioc.seeds() == ["a.ru", "b.ru", "c.ru"]

    def test_seeds_limit(self):
        ioc = IocList(["b.ru", "a.ru", "c.ru"])
        assert ioc.seeds(limit=2) == ["a.ru", "b.ru"]

    def test_iteration_sorted(self):
        ioc = IocList(["z.ru", "a.ru"])
        assert list(ioc) == ["a.ru", "z.ru"]

    def test_duplicates_collapse(self):
        ioc = IocList(["a.ru", "a.ru"])
        assert len(ioc) == 1
