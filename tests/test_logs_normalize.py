"""Unit tests for timestamp/IP normalization (Section IV-A)."""

from repro.logs import (
    Connection,
    DhcpLease,
    DnsRecord,
    DnsRecordType,
    IpResolver,
    ProxyRecord,
    VpnSession,
    normalize_dns_records,
    normalize_proxy_records,
    to_utc,
)


def lease(ip, hostname, start, end):
    return DhcpLease(ip=ip, hostname=hostname, start=start, end=end)


class TestIpResolver:
    def test_resolves_within_lease(self):
        resolver = IpResolver([lease("172.16.0.5", "hostA", 0, 100)])
        assert resolver.resolve("172.16.0.5", 50) == "hostA"

    def test_start_inclusive_end_exclusive(self):
        resolver = IpResolver(
            [lease("172.16.0.5", "hostA", 0, 100),
             lease("172.16.0.5", "hostB", 100, 200)]
        )
        assert resolver.resolve("172.16.0.5", 0) == "hostA"
        assert resolver.resolve("172.16.0.5", 100) == "hostB"

    def test_reassignment_across_time(self):
        resolver = IpResolver(
            [lease("172.16.0.5", "hostA", 0, 100),
             lease("172.16.0.5", "hostB", 150, 250)]
        )
        assert resolver.resolve("172.16.0.5", 50) == "hostA"
        assert resolver.resolve("172.16.0.5", 200) == "hostB"

    def test_gap_falls_back_to_raw_ip(self):
        resolver = IpResolver([lease("172.16.0.5", "hostA", 0, 100)])
        assert resolver.resolve("172.16.0.5", 120) == "172.16.0.5"

    def test_static_map_fallback(self):
        resolver = IpResolver([], static_map={"10.0.0.7": "staticHost"})
        assert resolver.resolve("10.0.0.7", 0) == "staticHost"

    def test_unknown_ip_identity(self):
        resolver = IpResolver([])
        assert resolver.resolve("8.8.8.8", 0) == "8.8.8.8"

    def test_vpn_sessions_work_identically(self):
        resolver = IpResolver(
            [VpnSession(ip="192.168.0.2", hostname="laptop", start=10, end=20)]
        )
        assert resolver.resolve("192.168.0.2", 15) == "laptop"

    def test_add_lease_keeps_order(self):
        resolver = IpResolver([lease("172.16.0.5", "late", 100, 200)])
        resolver.add_lease(lease("172.16.0.5", "early", 0, 100))
        assert resolver.resolve("172.16.0.5", 50) == "early"
        assert resolver.resolve("172.16.0.5", 150) == "late"

    def test_unsorted_input_leases(self):
        resolver = IpResolver(
            [lease("1.1.1.1", "b", 100, 200), lease("1.1.1.1", "a", 0, 100)]
        )
        assert resolver.resolve("1.1.1.1", 10) == "a"


class TestToUtc:
    def test_positive_offset_shifts_back(self):
        record = ProxyRecord(
            timestamp=3600.0, source_ip="x", destination="d.com",
            tz_offset_hours=1.0,
        )
        utc = to_utc(record)
        assert utc.timestamp == 0.0
        assert utc.tz_offset_hours == 0.0

    def test_zero_offset_returns_same_object(self):
        record = ProxyRecord(timestamp=5.0, source_ip="x", destination="d.com")
        assert to_utc(record) is record

    def test_negative_offset(self):
        record = ProxyRecord(
            timestamp=0.0, source_ip="x", destination="d.com",
            tz_offset_hours=-8.0,
        )
        assert to_utc(record).timestamp == 8 * 3600.0


class TestNormalizeProxy:
    def _records(self):
        return [
            ProxyRecord(
                timestamp=3600.0,
                source_ip="172.16.0.5",
                destination="www.news.example.com",
                destination_ip="93.184.216.34",
                user_agent="UA",
                referer="",
                tz_offset_hours=1.0,
            ),
            ProxyRecord(
                timestamp=100.0,
                source_ip="172.16.0.5",
                destination="8.8.8.8",
            ),
        ]

    def test_folds_and_resolves(self):
        resolver = IpResolver([lease("172.16.0.5", "hostA", 0, 10_000)])
        conns = list(normalize_proxy_records(self._records(), resolver))
        assert len(conns) == 1  # bare-IP destination dropped
        conn = conns[0]
        assert conn.host == "hostA"
        assert conn.domain == "example.com"
        assert conn.timestamp == 0.0

    def test_fold_level_override(self):
        resolver = IpResolver([])
        conns = list(
            normalize_proxy_records(self._records()[:1], resolver, fold_level=3)
        )
        assert conns[0].domain == "news.example.com"

    def test_referer_empty_string_preserved(self):
        resolver = IpResolver([])
        conn = next(normalize_proxy_records(self._records()[:1], resolver))
        assert conn.referer == ""
        assert conn.user_agent == "UA"


class TestNormalizeDns:
    def test_dns_has_no_http_context(self):
        records = [
            DnsRecord(
                timestamp=10.0, source_ip="10.0.0.1",
                domain="a.b.c3", record_type=DnsRecordType.A,
                resolved_ip="1.2.3.4",
            )
        ]
        conn = next(normalize_dns_records(records))
        assert conn.user_agent is None
        assert conn.referer is None
        assert conn.host == "10.0.0.1"
        assert conn.resolved_ip == "1.2.3.4"

    def test_dns_fold_level_three_default(self):
        records = [
            DnsRecord(
                timestamp=0.0, source_ip="h", domain="x.y.z.w",
            )
        ]
        conn = next(normalize_dns_records(records))
        assert conn.domain == "y.z.w"
