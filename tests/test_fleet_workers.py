"""Tests for the resident fleet executor (repro.fleet.workers).

The load-bearing properties: resident workers produce byte-identical
per-tenant detections at any worker count (including mixed-pipeline
fleets and sharded window aggregation); a SIGKILLed worker's tenants
respawn from their checkpoint chains and resume losslessly while the
other workers keep running; ``INJECT_INTEL`` is applied before any
later ``ADVANCE_DAY`` on the same queue (FIFO ordered delivery); and
the delta-checkpoint chains on disk survive torn tails.
"""

import json
import os
import signal
from pathlib import Path

import pytest

from repro.fleet import FleetManager, load_manifest
from repro.fleet.workers import (
    CMD_ADVANCE_DAY,
    CMD_CHECKPOINT,
    CMD_INJECT_INTEL,
    ResidentPool,
    load_tenant_chain,
)
from repro.synthetic import write_fleet_layout
from repro.testing import make_multi_enterprise_dataset

DAYS = 4


@pytest.fixture(scope="module")
def mixed_layout(tmp_path_factory) -> Path:
    """DNS lead + DNS follower + enterprise follower, 4 days on disk."""
    dataset = make_multi_enterprise_dataset(3, enterprise_tenants=1)
    directory = tmp_path_factory.mktemp("residentfleet")
    return write_fleet_layout(dataset, directory, days=DAYS)


@pytest.fixture(scope="module")
def serial_detections(mixed_layout):
    manifest = load_manifest(mixed_layout)
    report = FleetManager.from_manifest(manifest, workers=1).run()
    return _detections(report)


def _detections(report):
    return {t: sorted(d) for t, d in report.detected_by_tenant().items()}


class TestResidentParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial(self, mixed_layout, serial_detections, workers):
        manifest = load_manifest(mixed_layout)
        report = FleetManager.from_manifest(
            manifest, workers=workers, executor="resident",
        ).run()
        assert _detections(report) == serial_detections

    def test_window_shards_keep_parity(self, mixed_layout, serial_detections):
        manifest = load_manifest(mixed_layout)
        report = FleetManager.from_manifest(
            manifest, workers=2, executor="resident", window_shards=4,
        ).run()
        assert _detections(report) == serial_detections

    def test_worker_stats_cover_all_tenants(self, mixed_layout):
        manifest = load_manifest(mixed_layout)
        manager = FleetManager.from_manifest(
            manifest, workers=2, executor="resident",
        )
        report = manager.run()
        owned = sorted(
            t for stats in manager.worker_stats.values()
            for t in stats["tenants"]
        )
        assert owned == sorted(t.tenant_id for t in manifest.tenants)
        total_records = sum(
            stats["records"] for stats in manager.worker_stats.values()
        )
        assert total_records == sum(
            d.records for d in report.days
        )

    def test_worker_whois_stats_reach_the_plane(self, mixed_layout):
        # Enterprise engines run feature extraction inside the worker
        # process; their registry lookups must still land in the
        # manager's shared accounting (the hoisted-cache fix).
        manifest = load_manifest(mixed_layout)
        manager = FleetManager.from_manifest(
            manifest, workers=2, executor="resident",
        )
        manager.run()
        assert manager.intel.whois_cache.stats.misses > 0


class TestResidentCheckpoints:
    def test_interrupt_resume_writes_delta_chains(
        self, mixed_layout, serial_detections, tmp_path
    ):
        manifest = load_manifest(mixed_layout)
        ckpt = tmp_path / "ckpt"
        first = FleetManager.from_manifest(
            manifest, workers=2, executor="resident",
            checkpoint_dir=ckpt, full_checkpoint_every=2,
        ).run(max_rounds=2)
        assert first.interrupted
        # Round 0 wrote fulls, round 1 appended deltas.
        chains = {
            spec.tenant_id: load_tenant_chain(ckpt, spec.tenant_id)
            for spec in manifest.tenants
        }
        assert all(chain.rounds == 2 for chain in chains.values())
        assert any(chain.deltas for chain in chains.values())

        second = FleetManager.from_manifest(
            manifest, workers=2, executor="resident",
            checkpoint_dir=ckpt, resume=True, full_checkpoint_every=2,
        ).run()
        assert not second.interrupted
        combined = {}
        for day in first.days + second.days:
            combined.setdefault(day.tenant_id, []).extend(day.detected)
        assert {
            t: sorted(d) for t, d in combined.items()
        } == serial_detections

    def test_torn_delta_tail_is_dropped(self, mixed_layout, tmp_path):
        manifest = load_manifest(mixed_layout)
        ckpt = tmp_path / "ckpt"
        FleetManager.from_manifest(
            manifest, workers=1, executor="resident",
            checkpoint_dir=ckpt, full_checkpoint_every=2,
        ).run(max_rounds=2)
        tenant = manifest.tenants[0].tenant_id
        chain = load_tenant_chain(ckpt, tenant)
        assert chain.rounds == 2 and len(chain.deltas) == 1
        # Simulate a crash mid-append: garbage after the good line.
        delta_file = ckpt / tenant / "deltas.jsonl"
        with delta_file.open("a") as handle:
            handle.write('{"round": 3, "repo')
        torn = load_tenant_chain(ckpt, tenant)
        assert torn.rounds == 2 and len(torn.deltas) == 1

    def test_stale_delta_lines_below_full_are_skipped(
        self, mixed_layout, tmp_path
    ):
        manifest = load_manifest(mixed_layout)
        ckpt = tmp_path / "ckpt"
        FleetManager.from_manifest(
            manifest, workers=1, executor="resident", checkpoint_dir=ckpt,
        ).run(max_rounds=1)
        tenant = manifest.tenants[0].tenant_id
        # A leftover delta older than the full snapshot must be ignored.
        (ckpt / tenant / "deltas.jsonl").write_text(
            json.dumps({"round": 1, "report": None, "delta": {}}) + "\n"
        )
        chain = load_tenant_chain(ckpt, tenant)
        assert chain.rounds == 1
        assert chain.deltas == []


class TestCrashRecovery:
    def test_sigkill_resumes_losslessly(
        self, mixed_layout, serial_detections, tmp_path
    ):
        # Kill the worker that owns the enterprise tenant after the
        # first committed round; its tenants must respawn from their
        # chains and the fleet must still match the serial run.
        manifest = load_manifest(mixed_layout)
        manager = FleetManager.from_manifest(
            manifest, workers=2, executor="resident",
            checkpoint_dir=tmp_path / "ckpt", heartbeat=0.5,
            full_checkpoint_every=2,
        )
        killed = []

        def on_round(reports):
            if not killed:
                victim = next(
                    h for h in manager.resident_pool.workers
                    if "t2" in h.tenant_ids
                )
                os.kill(victim.pid, signal.SIGKILL)
                killed.append(victim.worker_id)

        report = manager.run(on_round=on_round)
        assert killed
        assert _detections(report) == serial_detections
        assert manager.worker_stats[killed[0]]["respawns"] == 1
        others = [
            stats["respawns"]
            for worker_id, stats in manager.worker_stats.items()
            if worker_id != killed[0]
        ]
        assert all(r == 0 for r in others)


class TestOrderedDelivery:
    def test_intel_applies_before_later_advance(self, mixed_layout, tmp_path):
        # Drive a single-worker pool by hand: enqueue INJECT_INTEL
        # immediately followed by ADVANCE_DAY without waiting.  FIFO
        # delivery must fold the board entries in first, so the
        # injected domains seed the advanced day's detection.
        manifest = load_manifest(mixed_layout)
        follower = next(
            spec for spec in manifest.tenants
            if spec.pipeline == "dns" and spec.tenant_id != "t0"
        )
        files = sorted(follower.directory.glob(follower.pattern))
        serial = FleetManager.from_manifest(
            load_manifest(mixed_layout), workers=1,
        ).run()
        seeded_day = next(
            d for d in serial.days_for(follower.tenant_id) if d.intel_seeded
        )
        injected = sorted(seeded_day.intel_seeded)

        pool = ResidentPool(
            [follower],
            workers=1,
            checkpoint_dir=tmp_path / "ckpt",
            whois_path=None,
            config=None,
            resume=False,
        )
        try:
            handle = pool.workers[0]
            for rnd, path in enumerate(files[: seeded_day.day + 1]):
                if rnd == seeded_day.day:
                    pool.send(handle, {
                        "cmd": CMD_INJECT_INTEL,
                        "entries": [
                            {"domain": domain, "score": 1.0,
                             "tenants": ["t0"], "first_day": rnd - 1}
                            for domain in injected
                        ],
                    })
                pool.send(handle, {
                    "cmd": CMD_ADVANCE_DAY,
                    "round": rnd,
                    "tasks": [{
                        "tenant_id": follower.tenant_id,
                        "log_path": str(path),
                        "bootstrap": rnd < follower.bootstrap_files,
                    }],
                })
            responses = [
                pool.recv(handle) for _ in files[: seeded_day.day + 1]
            ]
            final = responses[-1]["reports"][0]["report"]
            assert set(injected) <= set(final["intel_seeded"])
            assert set(injected) <= set(final["detected"])
            pool.send(handle, {
                "cmd": CMD_CHECKPOINT, "round": seeded_day.day + 1,
            })
            ack = pool.recv(handle)
            assert ack["event"] == "checkpointed"
            chain = load_tenant_chain(
                tmp_path / "ckpt", follower.tenant_id
            )
            assert chain.rounds == seeded_day.day + 1
        finally:
            pool.shutdown()
