"""Integration tests: the enterprise evaluation end to end (Section VI)."""

import statistics

import pytest


class TestTraining:
    def test_both_models_trained(self, enterprise_evaluation):
        report = enterprise_evaluation.detector.report
        assert report.cc_model is not None
        assert report.similarity_model is not None
        assert report.automated_domain_samples >= 8
        assert report.similarity_samples >= 10

    def test_dom_age_negatively_correlated(self, enterprise_evaluation):
        """Section VI-A: DomAge is the only feature negatively
        correlated with reported domains (old domains are benign)."""
        model = enterprise_evaluation.detector.report.cc_model
        assert model.coefficient("dom_age").estimate < 0

    def test_rare_ua_positively_correlated(self, enterprise_evaluation):
        model = enterprise_evaluation.detector.report.cc_model
        assert model.coefficient("rare_ua").estimate > 0


class TestFigure5:
    def test_reported_scores_dominate_legitimate(self, enterprise_evaluation):
        reported, legitimate = enterprise_evaluation.score_samples()
        assert reported and legitimate
        assert statistics.mean(reported) > statistics.mean(legitimate)


class TestFigure6a:
    @pytest.fixture(scope="class")
    def sweep(self, enterprise_evaluation):
        return enterprise_evaluation.cc_sweep((0.40, 0.44, 0.48))

    def test_count_decreases_with_threshold(self, sweep):
        counts = [p.detected_count for p in sweep]
        assert counts == sorted(counts, reverse=True)

    def test_detections_contain_true_cc(self, sweep, enterprise_dataset):
        loosest = sweep[0]
        cc_truth = {
            d for c in enterprise_dataset.campaigns for d in c.cc_domains
        }
        assert loosest.detected & cc_truth

    def test_detected_sets_nested(self, sweep):
        """A stricter threshold must detect a subset."""
        for looser, stricter in zip(sweep, sweep[1:]):
            assert stricter.detected <= looser.detected


class TestFigure6b:
    @pytest.fixture(scope="class")
    def sweep(self, enterprise_evaluation):
        return enterprise_evaluation.no_hint_sweep((0.33, 0.65, 0.85))

    def test_count_decreases_with_threshold(self, sweep):
        counts = [p.detected_count for p in sweep]
        assert counts == sorted(counts, reverse=True)

    def test_bp_expands_beyond_cc_seeds(self, sweep, enterprise_evaluation):
        cc_only = enterprise_evaluation.cc_detections(0.4)
        assert len(sweep[0].detected) > len(cc_only)

    def test_new_discoveries_found(self, sweep):
        """The paper's key claim: detections unknown to VT and SOC."""
        assert sweep[0].breakdown.new_malicious > 0

    def test_tdr_reasonable(self, sweep):
        assert sweep[0].breakdown.tdr >= 0.6


class TestFigure6c:
    @pytest.fixture(scope="class")
    def sweep(self, enterprise_evaluation):
        return enterprise_evaluation.soc_hints_sweep((0.33, 0.40, 0.45))

    def test_seeds_excluded_from_detections(self, sweep, enterprise_evaluation):
        seeds = set(enterprise_evaluation.ioc.seeds())
        for point in sweep:
            assert not (point.detected & seeds)

    def test_count_decreases_with_threshold(self, sweep):
        counts = [p.detected_count for p in sweep]
        assert counts == sorted(counts, reverse=True)

    def test_finds_campaign_siblings(self, sweep, enterprise_dataset):
        """Seeding with IOCs must surface other domains of the same
        campaigns (the Figure 8 behaviour)."""
        truth = enterprise_dataset.malicious_domains
        assert sweep[0].detected & truth


class TestModesComplementary:
    def test_modes_overlap_only_partially(self, enterprise_evaluation):
        """Section VI-D: the two modes detect substantially different
        domain sets, so running both improves coverage."""
        no_hint = enterprise_evaluation.no_hint_detections(0.33)
        hints = enterprise_evaluation.soc_hints_detections(0.33)
        assert no_hint or hints
        union = no_hint | hints
        overlap = no_hint & hints
        assert len(overlap) < len(union)
