"""Unit tests for dynamic histogram binning (Section IV-C)."""

import pytest

from repro.timing import build_histogram, histogram_from_timestamps, intervals
from repro.timing.histogram import Bin, DynamicHistogram


class TestIntervals:
    def test_basic(self):
        assert intervals([0.0, 10.0, 25.0]) == [10.0, 15.0]

    def test_single_timestamp(self):
        assert intervals([5.0]) == []

    def test_empty(self):
        assert intervals([]) == []

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            intervals([10.0, 5.0])

    def test_duplicate_timestamps_allowed(self):
        assert intervals([1.0, 1.0, 2.0]) == [0.0, 1.0]


class TestBuildHistogram:
    def test_single_cluster(self):
        hist = build_histogram([600.0, 601.0, 599.0, 602.0], bin_width=10.0)
        assert len(hist.bins) == 1
        assert hist.bins[0].hub == 600.0
        assert hist.bins[0].frequency == 1.0

    def test_two_clusters(self):
        hist = build_histogram([600.0, 600.0, 600.0, 5000.0], bin_width=10.0)
        assert len(hist.bins) == 2
        assert hist.dominant_bin.hub == 600.0
        assert hist.dominant_bin.frequency == 0.75

    def test_first_interval_seeds_first_hub(self):
        hist = build_histogram([100.0, 105.0], bin_width=10.0)
        assert hist.bins[0].hub == 100.0
        assert hist.bins[0].count == 2

    def test_hub_is_first_member_not_mean(self):
        # 100 then 109 join (within W=10); hub stays 100, so 111 joins
        # a *new* cluster even though it is close to 109.
        hist = build_histogram([100.0, 109.0, 111.0], bin_width=10.0)
        assert [b.hub for b in hist.bins] == [100.0, 111.0]

    def test_boundary_exactly_w_joins(self):
        hist = build_histogram([100.0, 110.0], bin_width=10.0)
        assert len(hist.bins) == 1

    def test_just_over_w_splits(self):
        hist = build_histogram([100.0, 110.01], bin_width=10.0)
        assert len(hist.bins) == 2

    def test_empty_intervals(self):
        hist = build_histogram([], bin_width=10.0)
        assert hist.bins == ()
        assert hist.total == 0

    def test_empty_histogram_has_no_dominant(self):
        with pytest.raises(ValueError):
            _ = build_histogram([], bin_width=10.0).dominant_bin

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            build_histogram([1.0], bin_width=0.0)

    def test_frequencies_sum_to_one(self):
        hist = build_histogram([1.0, 50.0, 100.0, 1.0, 51.0], bin_width=5.0)
        assert sum(b.frequency for b in hist.bins) == pytest.approx(1.0)

    def test_counts_validated(self):
        with pytest.raises(ValueError):
            DynamicHistogram(bins=(Bin(1.0, 2, 1.0),), total=5)

    def test_period_property(self):
        hist = build_histogram([600.0, 600.0, 30.0], bin_width=10.0)
        assert hist.period == 600.0


class TestHistogramFromTimestamps:
    def test_periodic_series(self):
        times = [float(i) * 600.0 for i in range(10)]
        hist = histogram_from_timestamps(times, bin_width=10.0)
        assert len(hist.bins) == 1
        assert hist.period == 600.0

    def test_jittered_series_still_one_bin(self):
        times = []
        t = 0.0
        for i in range(20):
            times.append(t)
            t += 600.0 + (3.0 if i % 2 else -3.0)
        hist = histogram_from_timestamps(times, bin_width=10.0)
        assert len(hist.bins) == 1

    def test_outlier_gets_own_bin(self):
        times = [0.0, 600.0, 1200.0, 1800.0, 9000.0]
        hist = histogram_from_timestamps(times, bin_width=10.0)
        assert len(hist.bins) == 2
        assert hist.period == 600.0
