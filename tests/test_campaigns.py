"""Adversarial campaign suite: determinism, detection-rate curves,
DGA label recovery, slow-burn persistence, and tenant churn.

The library under test (`repro.synthetic.campaigns`) and its
evaluation harness (`repro.eval.evasion`) power
``benchmarks/bench_evasion_suite.py``; these tests pin the contracts
the bench relies on at a scale small enough for tier-1.
"""

from pathlib import Path

import pytest

from repro.config import LANL_CONFIG
from repro.eval.evasion import DNS_EVAL_WORLD, dns_evasion_curve
from repro.intelstore.ct import CertObservation, CtIndex
from repro.logs import format_dns_line
from repro.runner import DnsLogRunner
from repro.streaming import StreamingDetector, replay_directory
from repro.synthetic import (
    ADVERSARIAL_DGA_FAMILIES,
    CAMPAIGN_NAMES,
    AdversarialCampaignSpec,
    WorldView,
    campaign_dns_records,
    churn_fleet_config,
    classify_dga,
    generate_fleet_dataset,
    generate_lanl_dataset,
    realize_campaign,
    write_fleet_layout,
)


@pytest.fixture(scope="module")
def dns_dataset():
    """The small LANL world the evasion curves run against."""
    return generate_lanl_dataset(DNS_EVAL_WORLD)


@pytest.fixture(scope="module")
def world(dns_dataset):
    return WorldView.from_dataset(dns_dataset)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

class TestDeterminism:
    @pytest.mark.parametrize("campaign", CAMPAIGN_NAMES)
    def test_same_seed_byte_identical_events(self, campaign, world,
                                             dns_dataset):
        spec = AdversarialCampaignSpec(
            campaign=campaign, strength=0.7, seed=13,
            start_day=5, duration_days=3,
        )
        first = realize_campaign(world, spec)
        second = realize_campaign(world, spec)
        assert first == second
        # Per-day emission is pure in (spec, day): visiting the days in
        # opposite orders must not change a single event.
        days = list(spec.active_days)
        for day in days:
            assert first.day_visits(day) == second.day_visits(day)
        for day in reversed(days):
            assert first.day_visits(day) == second.day_visits(day)
        assert campaign_dns_records(first, dns_dataset.host_ips, days[0]) \
            == campaign_dns_records(second, dns_dataset.host_ips, days[0])

    def test_different_seed_different_campaign(self, world):
        base = AdversarialCampaignSpec(campaign="jitter", seed=13)
        other = AdversarialCampaignSpec(campaign="jitter", seed=14)
        assert realize_campaign(world, base).cc_domains \
            != realize_campaign(world, other).cc_domains

    def test_spec_validation(self, world):
        with pytest.raises(ValueError):
            AdversarialCampaignSpec(campaign="nope")
        with pytest.raises(ValueError):
            AdversarialCampaignSpec(campaign="jitter", strength=1.5)
        with pytest.raises(ValueError):
            AdversarialCampaignSpec(campaign="jitter", duration_days=0)


# ---------------------------------------------------------------------------
# Strength monotonicity
# ---------------------------------------------------------------------------

class TestStrengthKnob:
    @pytest.mark.parametrize("campaign", CAMPAIGN_NAMES)
    def test_detection_rate_non_increasing(self, campaign, dns_dataset):
        """Turning the knob up must never help the defender: full
        detection at strength 0, and a (near) monotone decay after --
        the small-sample middle points get a noise allowance."""
        curve = dns_evasion_curve(
            campaign, (0.0, 0.5, 1.0), trials=1, dataset=dns_dataset,
        )
        assert curve.parity
        rates = [point.batch_rate for point in curve.points]
        assert rates[0] == 1.0
        assert rates[-1] <= rates[0]
        for previous, current in zip(rates, rates[1:]):
            assert current <= previous + 0.15, rates


# ---------------------------------------------------------------------------
# DGA families
# ---------------------------------------------------------------------------

class TestDgaFamilies:
    @pytest.mark.parametrize("family", ADVERSARIAL_DGA_FAMILIES)
    def test_label_recovery_per_family(self, family, world):
        """Every rotated domain must classify back to the family that
        generated it -- the label channel the triage tooling keys on."""
        spec = AdversarialCampaignSpec(
            campaign=f"dga-{family}", strength=1.0, seed=5,
            start_day=3, duration_days=2,
        )
        realized = realize_campaign(world, spec)
        assert set(realized.dga_labels) == set(realized.cc_domains)
        assert set(realized.dga_labels.values()) == {family}
        for domain in realized.cc_domains:
            assert classify_dga(domain) == family

    def test_families_do_not_cross_classify(self, world):
        seen: dict[str, str] = {}
        for family in ADVERSARIAL_DGA_FAMILIES:
            spec = AdversarialCampaignSpec(
                campaign=f"dga-{family}", strength=0.5, seed=5,
            )
            for domain in realize_campaign(world, spec).cc_domains:
                assert seen.setdefault(domain, family) == family

    def test_non_dga_campaigns_carry_no_labels(self, world):
        spec = AdversarialCampaignSpec(campaign="jitter", seed=5)
        assert realize_campaign(world, spec).dga_labels == {}


# ---------------------------------------------------------------------------
# Slow burn across rollovers and checkpoint/restore
# ---------------------------------------------------------------------------

class TestSlowBurnPersistence:
    @pytest.fixture(scope="class")
    def burn_dir(self, dns_dataset, tmp_path_factory):
        """A week of campaign-free LANL dates (3/23on) with a slow-burn
        campaign overlaid from the second file; the first file is the
        replay bootstrap."""
        directory = tmp_path_factory.mktemp("slowburn")
        bootstrap = dns_dataset.config.bootstrap_days
        spec = AdversarialCampaignSpec(
            campaign="slow-burn", strength=0.0, seed=31,
            start_day=bootstrap + 23, duration_days=6,
        )
        realized = realize_campaign(
            WorldView.from_dataset(dns_dataset), spec
        )
        for date in range(23, 30):
            records = dns_dataset.day_records(date) + campaign_dns_records(
                realized, dns_dataset.host_ips, bootstrap + date - 1
            )
            records.sort(key=lambda r: r.timestamp)
            path = directory / f"dns-march-{date:02d}.log"
            with path.open("w") as handle:
                for record in records:
                    handle.write(format_dns_line(record) + "\n")
        return directory, realized

    def _kwargs(self, dns_dataset):
        return dict(
            bootstrap_files=1,
            pattern="dns-*.log",
            internal_suffixes=dns_dataset.internal_suffixes,
            server_ips=dns_dataset.server_ips,
            batch_size=250,
        )

    def test_fresh_domains_reenter_funnel_across_rollovers(
        self, burn_dir, dns_dataset
    ):
        directory, realized = burn_dir
        result = replay_directory(directory, **self._kwargs(dns_dataset))
        truth = realized.truth_domains()
        hit_days = [
            report.day for report in result.reports
            if truth & set(report.detected)
        ]
        # Each activation burns a fresh domain, so the campaign keeps
        # re-entering the new-domain funnel day after day.
        assert len(hit_days) >= 3
        detected = set().union(
            *(report.detected for report in result.reports)
        )
        assert len(truth & detected) >= 3

    def test_interrupted_replay_matches_uninterrupted(
        self, burn_dir, dns_dataset, tmp_path
    ):
        """A checkpoint/restore cycle mid-campaign must not lose or
        invent a single detection on any day."""
        directory, _ = burn_dir
        kwargs = self._kwargs(dns_dataset)
        full = replay_directory(directory, **kwargs)

        checkpoint = tmp_path / "burn.ckpt.json"
        first = replay_directory(
            directory, checkpoint_path=checkpoint, max_batches=10,
            **kwargs,
        )
        assert first.interrupted
        second = replay_directory(
            directory, checkpoint_path=checkpoint, resume=True, **kwargs
        )
        combined = first.reports + second.reports
        assert [r.day for r in combined] == [r.day for r in full.reports]
        for got, want in zip(combined, full.reports):
            assert got.detected == want.detected
            assert got.rare_domains == want.rare_domains


# ---------------------------------------------------------------------------
# CT sibling evidence under adversarial campaigns
# ---------------------------------------------------------------------------

class TestCtParityUnderCampaigns:
    def test_ct_seeding_reaches_evading_campaign_with_parity(
        self, dns_dataset, world
    ):
        """An attacker who randomizes timing (jitter at full strength)
        evades the automation detector -- but a CT certificate shared
        with a detected campaign pulls its domain back in, identically
        on the batch and streaming paths."""
        bootstrap = dns_dataset.config.bootstrap_days
        start_day = bootstrap + 22
        loud = realize_campaign(world, AdversarialCampaignSpec(
            campaign="jitter", strength=0.0, seed=7, start_day=start_day,
        ))
        quiet = realize_campaign(world, AdversarialCampaignSpec(
            campaign="jitter", strength=1.0, seed=8, start_day=start_day,
        ))
        index = CtIndex([CertObservation(
            "ab" * 32, 0.0, 1.0, "CA",
            (loud.cc_domains[0], quiet.cc_domains[0]),
        )])

        date = 23
        records = dns_dataset.day_records(date)
        for campaign in (loud, quiet):
            records += campaign_dns_records(
                campaign, dns_dataset.host_ips, start_day
            )
        records.sort(key=lambda r: r.timestamp)

        def build_runner(ct_edges):
            runner = DnsLogRunner(
                config=LANL_CONFIG,
                internal_suffixes=dns_dataset.internal_suffixes,
                server_ips=dns_dataset.server_ips,
                ct_edges=ct_edges,
            )
            runner.history.bootstrap(dns_dataset.bootstrap_domains)
            return runner

        without = build_runner(None).process_records(records)
        batch = build_runner(index).process_records(records)
        assert loud.cc_domains[0] in without.detected
        assert quiet.cc_domains[0] not in without.detected
        assert quiet.cc_domains[0] in batch.detected

        stream = StreamingDetector(
            config=LANL_CONFIG,
            internal_suffixes=dns_dataset.internal_suffixes,
            server_ips=dns_dataset.server_ips,
        )
        stream.history.bootstrap(dns_dataset.bootstrap_domains)
        stream.submit_raw(records)
        stream.poll()
        stream.score()
        report = stream.rollover(ct_edges=index)
        assert report.detected == batch.detected


# ---------------------------------------------------------------------------
# Tenant churn
# ---------------------------------------------------------------------------

class TestTenantChurn:
    def test_churn_config_validation(self):
        with pytest.raises(ValueError):
            churn_fleet_config(strength=2.0)
        with pytest.raises(ValueError):
            churn_fleet_config(n_tenants=2)

    def test_resident_worker_parity_across_churn(self, tmp_path):
        """Joining and leaving tenants must not make detections depend
        on worker count: identical per-tenant results at 1, 2 and 4
        resident workers."""
        from repro.fleet import FleetManager, load_manifest
        from repro.testing import SMALL_FLEET_TENANT

        config = churn_fleet_config(
            strength=0.5, seed=11, n_tenants=3, tenant=SMALL_FLEET_TENANT,
        )
        fleet = generate_fleet_dataset(config)
        manifest = load_manifest(
            write_fleet_layout(fleet, tmp_path / "fleet", days=8)
        )
        joiners = [s.tenant_id for s in manifest.tenants if s.join_round]
        assert joiners, "churn scenario must produce a mid-run joiner"

        results = {}
        for workers in (1, 2, 4):
            manager = FleetManager.from_manifest(
                manifest, workers=workers, executor="resident"
            )
            report = manager.run()
            results[workers] = {
                tenant: sorted(domains)
                for tenant, domains in report.detected_by_tenant().items()
            }
        assert results[1] == results[2] == results[4]
        assert set(results[1]) == {s.tenant_id for s in manifest.tenants}
        # The scenario really churned: one tenant left early (fewer
        # log files than the fleet span) in addition to the joiner.
        file_counts = {
            spec.tenant_id: len(sorted(spec.directory.glob(spec.pattern)))
            for spec in manifest.tenants
        }
        assert min(file_counts.values()) < max(file_counts.values())
