"""Tests for the unified observability plane (repro.obs).

The load-bearing properties: instrument semantics match Prometheus
conventions (monotone counters, fixed-bucket cumulative histograms);
snapshot merge is associative and commutative so fleet-wide
aggregation is order-independent; ``snapshot_delta`` round-trips
through the resident-worker queue pattern without losing or double
counting samples under concurrency; metrics are invisible to
detection outcomes (byte-identical reports on vs off); snapshots
survive ``state.py`` checkpoints; and a multi-worker resident fleet
merges per-worker deltas into one fleet-wide view whose per-tenant
counters equal the per-tenant report sums.
"""

import json
import queue
import threading

import pytest

from repro.obs.logs import configure_logging, get_logger, log_event
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    MetricsSnapshot,
    sample_key,
    split_sample_key,
)
from repro.synthetic import generate_lanl_dataset
from repro.testing import SMALL_LANL


@pytest.fixture(scope="module")
def lanl_dataset():
    return generate_lanl_dataset(SMALL_LANL)


class TestInstruments:
    def test_counter_semantics(self):
        reg = MetricsRegistry()
        counter = reg.counter("requests_total")
        counter.inc()
        counter.inc(4)
        snap = reg.snapshot()
        assert snap.counter_value("requests_total") == 5.0

    def test_labels_are_separate_samples(self):
        reg = MetricsRegistry()
        reg.counter("drops_total", stage="a").inc()
        reg.counter("drops_total", stage="b").inc(2)
        snap = reg.snapshot()
        assert snap.counter_value("drops_total", stage="a") == 1.0
        assert snap.counter_value("drops_total", stage="b") == 2.0
        assert snap.families() == {"drops_total"}

    def test_label_order_is_canonical(self):
        assert sample_key("m", b=1, a=2) == sample_key("m", a=2, b=1)
        name, labels = split_sample_key(sample_key("m", a=2, b=1))
        assert name == "m"
        assert labels == '{a="2",b="1"}'

    def test_same_instrument_memoized(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        assert reg.counter("x_total") is not reg.counter("x_total", k="v")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("queue_depth")
        gauge.set(7)
        gauge.set(3)
        assert reg.snapshot().gauge_value("queue_depth") == 3.0

    def test_histogram_bucketing(self):
        reg = MetricsRegistry()
        hist = reg.histogram("batch_size", buckets=DEFAULT_SIZE_BUCKETS)
        for value in (0.5, 1, 2, 10_000):
            hist.observe(value)
        stats = reg.snapshot().histogram_stats("batch_size")
        assert stats["count"] == 4
        assert stats["sum"] == pytest.approx(10_003.5)
        # Bounds are upper bounds; the trailing count is the +Inf bucket.
        assert len(stats["counts"]) == len(stats["bounds"]) + 1
        assert stats["counts"][-1] == 1  # 10_000 overflows every bound
        assert sum(stats["counts"]) == 4

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(3.0, 1.0))

    def test_span_records_seconds_histogram(self):
        reg = MetricsRegistry()
        with reg.span("stage") as span:
            pass
        assert span.elapsed >= 0.0
        stats = reg.snapshot().histogram_stats("stage_seconds")
        assert stats["count"] == 1
        assert reg.snapshot().timings().keys() == {"stage"}

    def test_null_registry_is_inert_but_spans_time(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.counter("x_total").inc()
        with NULL_METRICS.span("stage") as span:
            pass
        assert span.elapsed >= 0.0
        assert NULL_METRICS.snapshot().is_empty()

    def test_span_propagates_exceptions(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("failing"):
                raise RuntimeError("boom")
        assert reg.snapshot().histogram_stats("failing_seconds")["count"] == 1


def _snap(counters=None, gauges=None, histograms=None):
    return MetricsSnapshot(counters, gauges, histograms)


def _hist(counts, bounds=(1.0, 2.0)):
    return {
        "bounds": list(bounds),
        "counts": list(counts),
        "sum": float(sum(counts)),
        "count": sum(counts),
    }


class TestSnapshotAlgebra:
    A = _snap({"c": 1.0}, {"g": 1.0}, {"h_seconds": _hist([1, 0, 2])})
    B = _snap({"c": 2.0, "d": 5.0}, {"g": 9.0},
              {"h_seconds": _hist([0, 1, 1])})
    C = _snap({"d": 1.0}, {}, {"k_seconds": _hist([3, 0, 0])})

    def test_merge_adds_counters_and_histograms(self):
        merged = self.A.merge(self.B)
        assert merged.counters == {"c": 3.0, "d": 5.0}
        assert merged.histograms["h_seconds"]["counts"] == [1, 1, 3]
        assert merged.histograms["h_seconds"]["count"] == 5

    def test_merge_gauges_right_biased(self):
        assert self.A.merge(self.B).gauges["g"] == 9.0
        assert self.B.merge(self.A).gauges["g"] == 1.0

    def test_merge_associative(self):
        left = self.A.merge(self.B).merge(self.C)
        right = self.A.merge(self.B.merge(self.C))
        assert left.as_dict() == right.as_dict()

    def test_merge_commutative_without_gauges(self):
        a = _snap(self.A.counters, None, self.A.histograms)
        b = _snap(self.B.counters, None, self.B.histograms)
        assert a.merge(b).as_dict() == b.merge(a).as_dict()

    def test_diff_then_merge_restores_counters(self):
        baseline, current = self.A, self.A.merge(self.B)
        delta = current.diff(baseline)
        restored = baseline.merge(delta)
        assert restored.counters == current.counters
        assert restored.histograms == current.histograms

    def test_serialization_round_trip(self):
        payload = json.loads(json.dumps(self.A.merge(self.C).as_dict()))
        restored = MetricsSnapshot.from_dict(payload)
        assert restored.as_dict() == self.A.merge(self.C).as_dict()

    def test_to_prom_exposition(self):
        reg = MetricsRegistry()
        reg.counter("events_total", kind="dns").inc(3)
        with reg.span("stage"):
            pass
        text = reg.snapshot().to_prom()
        assert 'events_total{kind="dns"} 3' in text
        assert "stage_seconds_count" in text
        assert 'le="+Inf"' in text


class TestRegistryMerging:
    def test_snapshot_delta_advances_baseline(self):
        reg = MetricsRegistry()
        reg.counter("ticks_total").inc(2)
        first = reg.snapshot_delta()
        assert first.counter_value("ticks_total") == 2.0
        assert reg.snapshot_delta().is_empty()
        reg.counter("ticks_total").inc()
        assert reg.snapshot_delta().counter_value("ticks_total") == 1.0
        # The full snapshot still carries the cumulative value.
        assert reg.snapshot().counter_value("ticks_total") == 3.0

    def test_absorb_folds_foreign_deltas(self):
        manager, worker = MetricsRegistry(), MetricsRegistry()
        manager.counter("ticks_total").inc()
        worker.counter("ticks_total").inc(4)
        manager.absorb(worker.snapshot_delta())
        assert manager.snapshot().counter_value("ticks_total") == 5.0

    def test_collector_sampled_at_snapshot_time(self):
        reg = MetricsRegistry()
        state = {"hits": 0}
        reg.add_collector(
            lambda: {sample_key("hits_total"): float(state["hits"])}
        )
        state["hits"] = 7
        assert reg.snapshot().counter_value("hits_total") == 7.0

    def test_thread_safety_shared_registry(self):
        reg = MetricsRegistry()
        counter = reg.counter("contended_total")

        def hammer():
            for _ in range(5_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.snapshot().counter_value("contended_total") == 40_000.0

    def test_worker_queue_pattern_preserves_totals(self):
        """Per-worker registries ship deltas over a queue mid-flight;
        the manager's merged view must equal the true totals."""
        manager = MetricsRegistry()
        deltas: queue.Queue = queue.Queue()

        def worker(worker_id: int):
            reg = MetricsRegistry()
            for round_no in range(10):
                reg.counter("work_total", worker=worker_id).inc(3)
                reg.counter("rounds_total").inc()
                deltas.put(reg.snapshot_delta().as_dict())

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        while not deltas.empty():
            manager.absorb(MetricsSnapshot.from_dict(deltas.get()))
        snap = manager.snapshot()
        assert snap.counter_value("rounds_total") == 40.0
        for worker_id in range(4):
            assert snap.counter_value(
                "work_total", worker=worker_id
            ) == 30.0


def _day_outcome(report):
    """The detection-relevant content of a day report (no timings)."""
    return (
        report.day,
        report.records,
        sorted(report.rare_domains),
        sorted(report.cc_domains),
        list(report.detected),
    )


def _replay_days(lanl_dataset, metrics):
    from repro.streaming import StreamingDetector

    detector = StreamingDetector(
        internal_suffixes=lanl_dataset.internal_suffixes,
        server_ips=lanl_dataset.server_ips,
        metrics=metrics,
    )
    outcomes = []
    for march_date in (1, 2, 3):
        detector.submit_raw(lanl_dataset.day_records(march_date))
        detector.poll()
        report = detector.rollover(detect=march_date > 1)
        outcomes.append(_day_outcome(report))
    return outcomes, detector


class TestDetectionParity:
    def test_metrics_do_not_change_detections(self, lanl_dataset):
        """The observability plane must be invisible to outcomes:
        identical day reports with metrics off, on, and NULL."""
        off, _ = _replay_days(lanl_dataset, None)
        on, detector = _replay_days(lanl_dataset, MetricsRegistry())
        assert on == off
        # And the instrumented run actually measured something.
        snap = detector.metrics.snapshot()
        assert snap.counter_value("stream_events_total") > 0
        assert "window_rollover" in snap.timings()
        # The legacy verdict-cache stats ride the unified registry via
        # the engine's collector.
        assert "verdict_cache_events_total" in snap.families()

    def test_reduction_counters_match_stats(self, lanl_dataset):
        """Batched flushing must not drop or double count records."""
        _, detector = _replay_days(lanl_dataset, MetricsRegistry())
        snap = detector.metrics.snapshot()
        stats = detector.funnel.stats
        seen = sum(stats.record_counts("all").values())
        kept = sum(stats.record_counts("filter_internal_servers").values())
        assert snap.counter_value("reduction_records_total") == seen
        assert snap.counter_value(
            "reduction_kept_total", stage="filter_internal_servers"
        ) == kept


class TestCheckpointRoundTrip:
    def test_snapshot_survives_streaming_checkpoint(self, lanl_dataset):
        from repro.state import restore_streaming, streaming_state

        _, detector = _replay_days(lanl_dataset, MetricsRegistry())
        before = detector.metrics.snapshot()
        assert not before.is_empty()

        payload = json.loads(json.dumps(streaming_state(detector)))
        restored = restore_streaming(payload, metrics=MetricsRegistry())
        after = restored.metrics.snapshot()
        assert after.counters == before.counters
        assert after.histograms == before.histograms

    def test_metrics_off_checkpoint_has_no_snapshot(self, lanl_dataset):
        from repro.state import streaming_state

        _, detector = _replay_days(lanl_dataset, None)
        assert streaming_state(detector)["metrics"] is None


class TestFleetAggregation:
    """The acceptance scenario: a 4-worker resident fleet merges
    per-worker deltas into one snapshot whose per-tenant counters
    equal the per-tenant report sums."""

    @pytest.fixture(scope="class")
    def fleet_run(self, tmp_path_factory):
        from repro.fleet import FleetManager, load_manifest
        from repro.synthetic import write_fleet_layout
        from repro.testing import make_multi_enterprise_dataset

        dataset = make_multi_enterprise_dataset(4)
        layout = write_fleet_layout(
            dataset, tmp_path_factory.mktemp("obsfleet"), days=4
        )
        manifest = load_manifest(layout)
        baseline = FleetManager.from_manifest(manifest, workers=1).run()
        registry = MetricsRegistry()
        report = FleetManager.from_manifest(
            manifest, workers=4, executor="resident", metrics=registry,
        ).run()
        return baseline, report, registry.snapshot()

    def test_detections_match_uninstrumented_serial(self, fleet_run):
        baseline, report, _ = fleet_run
        assert {
            t: sorted(d) for t, d in report.detected_by_tenant().items()
        } == {
            t: sorted(d) for t, d in baseline.detected_by_tenant().items()
        }

    def test_per_tenant_counters_equal_report_sums(self, fleet_run):
        _, report, snap = fleet_run
        days_by_tenant: dict[str, int] = {}
        records_by_tenant: dict[str, int] = {}
        for day in report.days:
            days_by_tenant[day.tenant_id] = days_by_tenant.get(day.tenant_id, 0) + 1
            records_by_tenant[day.tenant_id] = (
                records_by_tenant.get(day.tenant_id, 0) + day.records
            )
        for tenant, days in days_by_tenant.items():
            assert snap.counter_value(
                "tenant_days_total", tenant=tenant
            ) == days
            assert snap.counter_value(
                "tenant_records_total", tenant=tenant
            ) == records_by_tenant[tenant]

    def test_fleet_lifecycle_counters(self, fleet_run):
        _, report, snap = fleet_run
        # One round per layout day, bootstrap round included (the
        # report only lists post-bootstrap days).
        assert snap.counter_value("fleet_rounds_total") == 4
        # 4 tenants x 4 rounds of ADVANCE_DAY (checkpoint commands only
        # flow when the manifest configures checkpointing).
        assert snap.counter_value(
            "fleet_commands_total", cmd="advance_day"
        ) == 16

    def test_legacy_cache_stats_served_by_registry(self, fleet_run):
        """The shared intel plane's CacheStats ride the unified
        registry via the manager's collector (the verdict-cache
        counterpart is covered on the streaming engine, where its
        samples are non-empty)."""
        _, _, snap = fleet_run
        assert "intel_cache_lookups_total" in snap.families()

    def test_report_carries_snapshot_and_timings(self, fleet_run):
        _, report, snap = fleet_run
        doc = report.as_dict()
        assert doc["metrics"]["counters"]
        # Per-day rollover stages ride the report; the worker-side
        # advance span rides the merged registry snapshot.
        assert "automation" in doc["stage_seconds"]
        assert "worker_advance" in snap.timings()


class TestStructuredLogging:
    def test_json_lines_shape(self, capsys):
        configure_logging("info", json_mode=True)
        try:
            log_event(
                get_logger("test"), "unit_event", day=3, detected=2
            )
        finally:
            configure_logging("warning", json_mode=False)
        line = capsys.readouterr().err.strip()
        payload = json.loads(line)
        assert payload["event"] == "unit_event"
        assert payload["logger"] == "repro.test"
        assert payload["day"] == 3
        assert payload["detected"] == 2

    def test_disabled_level_emits_nothing(self, capsys):
        configure_logging("error", json_mode=True)
        try:
            log_event(get_logger("test"), "quiet_event")
        finally:
            configure_logging("warning", json_mode=False)
        assert capsys.readouterr().err == ""


class TestCliMetricsOut:
    @pytest.fixture(scope="class")
    def log_dir(self, tmp_path_factory):
        from repro.cli import main

        out_dir = tmp_path_factory.mktemp("obslogs") / "logs"
        assert main([
            "generate", str(out_dir), "--hosts", "30", "--days", "3",
        ]) == 0
        return out_dir

    def test_stream_writes_snapshot_and_prom(self, log_dir, tmp_path, capsys):
        from repro.cli import main

        metrics_path = tmp_path / "metrics.json"
        code = main([
            "stream", str(log_dir), "--metrics-out", str(metrics_path),
        ])
        capsys.readouterr()
        assert code in (0, 1)  # detection outcome, not an error
        snap = MetricsSnapshot.from_dict(
            json.loads(metrics_path.read_text())
        )
        assert snap.counter_value("stream_events_total") > 0
        assert "stream_ingest" in snap.timings()
        prom = metrics_path.with_suffix(".prom").read_text()
        assert "stream_events_total" in prom

    def test_snapshot_checker_accepts_cli_output(self, log_dir, tmp_path, capsys):
        import sys as _sys
        from pathlib import Path

        from repro.cli import main

        _sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))
        try:
            from check_metrics_snapshot import check_snapshot
        finally:
            _sys.path.pop(0)

        metrics_path = tmp_path / "metrics.json"
        main(["stream", str(log_dir), "--metrics-out", str(metrics_path)])
        capsys.readouterr()
        assert check_snapshot(
            metrics_path,
            ["stream_events_total", "reduction_records_total",
             "bp_runs_total"],
        ) == []
        assert check_snapshot(metrics_path, ["no_such_family"]) != []

    def test_log_json_error_is_structured(self, capsys):
        from repro.cli import main

        code = main(["stream", "/nonexistent", "--resume", "--log-json"])
        try:
            assert code == 2
            err = capsys.readouterr().err.strip().splitlines()[-1]
            payload = json.loads(err)
            assert payload["event"] == "error"
            assert "checkpoint" in payload["message"]
        finally:
            configure_logging("warning", json_mode=False)
