"""Shared fixtures.

Dataset-generation and pipeline-training fixtures are session-scoped:
the synthetic worlds are deterministic functions of their seeds, so
sharing them across tests is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.synthetic import generate_enterprise_dataset, generate_lanl_dataset
from repro.testing import SMALL_ENTERPRISE, SMALL_LANL


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "parity: legacy-scalar vs columnar/vectorized equivalence tests. "
        "The scalar paths (see the `_parity` notes in the source) are "
        "kept only to anchor these; run the whole group with "
        "`pytest -m parity` before touching either side.",
    )


@pytest.fixture(scope="session")
def lanl_dataset():
    return generate_lanl_dataset(SMALL_LANL)


@pytest.fixture(scope="session")
def enterprise_dataset():
    return generate_enterprise_dataset(SMALL_ENTERPRISE)


@pytest.fixture(scope="session")
def enterprise_evaluation(enterprise_dataset):
    from repro.eval import EnterpriseEvaluation

    return EnterpriseEvaluation(enterprise_dataset)


@pytest.fixture(scope="session")
def lanl_report(lanl_dataset):
    from repro.eval import LanlChallengeSolver

    return LanlChallengeSolver(lanl_dataset).solve_all()
