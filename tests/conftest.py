"""Shared fixtures.

Dataset-generation and pipeline-training fixtures are session-scoped:
the synthetic worlds are deterministic functions of their seeds, so
sharing them across tests is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.synthetic import (
    EnterpriseDatasetConfig,
    LanlConfig,
    generate_enterprise_dataset,
    generate_lanl_dataset,
)

#: Small but fully featured LANL world used across the suite.
SMALL_LANL = LanlConfig(
    seed=42,
    n_hosts=60,
    bootstrap_days=3,
    popular_domains=40,
    churn_domains_per_day=8,
    browsing_visits_per_host=8,
)

#: Small enterprise world with enough campaigns to train both models.
SMALL_ENTERPRISE = EnterpriseDatasetConfig(
    seed=2014,
    n_hosts=60,
    bootstrap_days=9,
    operation_days=7,
    quiet_days=3,
    popular_domains=60,
    churn_domains_per_day=12,
    n_campaigns=20,
)


@pytest.fixture(scope="session")
def lanl_dataset():
    return generate_lanl_dataset(SMALL_LANL)


@pytest.fixture(scope="session")
def enterprise_dataset():
    return generate_enterprise_dataset(SMALL_ENTERPRISE)


@pytest.fixture(scope="session")
def enterprise_evaluation(enterprise_dataset):
    from repro.eval import EnterpriseEvaluation

    return EnterpriseEvaluation(enterprise_dataset)


@pytest.fixture(scope="session")
def lanl_report(lanl_dataset):
    from repro.eval import LanlChallengeSolver

    return LanlChallengeSolver(lanl_dataset).solve_all()
