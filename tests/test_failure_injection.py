"""Failure-injection tests: the pipeline under degraded inputs.

Operational log pipelines meet corrupt files, empty days, absent
intelligence sources and pathological timing series; none of these may
crash detection or corrupt carried state.
"""

import pytest

from repro.config import HistogramConfig, SystemConfig
from repro.core import EnterpriseDetector, belief_propagation
from repro.intel import VirusTotalOracle, WhoisDatabase
from repro.logs import Connection, parse_dns_log, parse_proxy_log
from repro.profiling import DailyTraffic, DestinationHistory, extract_rare_domains
from repro.timing import AutomationDetector


class TestCorruptLogs:
    def test_dns_stream_survives_garbage(self):
        lines = [
            "100.0 10.0.0.1 A ok.c3 1.2.3.4",
            "\x00\x01 binary trash",
            "not even close",
            "200.0 10.0.0.1 A also-ok.c3 -",
            "300.0 10.0.0.1",                 # truncated
            "400 10.0.0.1 A trailing.c3 - extra fields here",
        ]
        records = list(parse_dns_log(lines))
        assert [r.domain for r in records] == ["ok.c3", "also-ok.c3"]

    def test_proxy_stream_survives_garbage(self):
        good = "100.0\t0\t1.2.3.4\tGET\td.com\t/\t-\t200\t-\t-"
        lines = [good, "a\tb", "", good.replace("200", "not-a-code")]
        assert len(list(parse_proxy_log(lines))) == 1

    def test_entirely_garbage_file_yields_nothing(self):
        assert list(parse_dns_log(["x"] * 100)) == []


class TestEmptyAndDegenerateDays:
    def test_empty_day_produces_empty_result(self, enterprise_dataset):
        detector = EnterpriseDetector(whois=enterprise_dataset.whois)
        detector.train(
            enterprise_dataset.day_batches(0, enterprise_dataset.config.bootstrap_days),
            enterprise_dataset.build_virustotal(),
        )
        result = detector.process_day(99, [], update_profiles=False)
        assert result.rare_domains == set()
        assert result.cc_domains == []
        assert result.no_hint is None

    def test_single_connection_day(self, enterprise_dataset):
        detector = EnterpriseDetector(whois=enterprise_dataset.whois)
        detector.train(
            enterprise_dataset.day_batches(0, enterprise_dataset.config.bootstrap_days),
            enterprise_dataset.build_virustotal(),
        )
        conn = Connection(
            timestamp=99 * 86_400.0, host="h1", domain="lonely.ru",
            user_agent="UA", referer="",
        )
        result = detector.process_day(99, [conn], update_profiles=False)
        assert result.rare_domains == {"lonely.ru"}
        assert result.cc_domains == []  # one connection cannot beacon

    def test_rare_extraction_on_empty_traffic(self):
        traffic = DailyTraffic(0)
        traffic.finalize()
        assert extract_rare_domains(traffic, DestinationHistory()) == set()


class TestDegradedIntelligence:
    def test_all_whois_missing_uses_imputation(self, enterprise_dataset):
        """Training with an *empty* WHOIS registry must still work --
        every feature falls back to the imputed neutral value."""
        detector = EnterpriseDetector(whois=WhoisDatabase())
        report = detector.train(
            enterprise_dataset.day_batches(0, enterprise_dataset.config.bootstrap_days),
            enterprise_dataset.build_virustotal(),
        )
        assert report.cc_model is not None
        # dom_age carries no signal now; the model must lean on others.
        age = report.cc_model.coefficient("dom_age")
        assert not age.significant

    def test_blind_virustotal_degrades_gracefully(self, enterprise_dataset):
        """Coverage 0 leaves no positive labels: models may fit but
        everything scores near zero; nothing crashes."""
        blind = VirusTotalOracle(
            enterprise_dataset.malicious_domains, coverage=0.0
        )
        detector = EnterpriseDetector(whois=enterprise_dataset.whois)
        report = detector.train(
            enterprise_dataset.day_batches(0, enterprise_dataset.config.bootstrap_days),
            blind,
        )
        if report.cc_model is not None and report.similarity_model is not None:
            day = enterprise_dataset.config.bootstrap_days
            result = detector.process_day(
                day, enterprise_dataset.day_connections(day),
                update_profiles=False,
            )
            assert result.cc_domains == []  # no positives -> no alarms

    def test_no_whois_at_all(self):
        """DNS-style deployment: detector constructed without WHOIS."""
        detector = EnterpriseDetector()
        assert detector.extractor.whois is None


class TestPathologicalTiming:
    def test_identical_timestamps(self):
        detector = AutomationDetector()
        verdict = detector.test_series("h", "d", [100.0] * 10)
        # Zero intervals: perfectly "periodic" at period 0 -- flagged
        # automated, which is correct for a hammering process.
        assert verdict.automated
        assert verdict.period == 0.0

    def test_two_connections_insufficient(self):
        detector = AutomationDetector(HistogramConfig(min_connections=4))
        assert not detector.test_series("h", "d", [0.0, 600.0]).automated

    def test_huge_series_does_not_blow_up(self):
        times = [float(i) * 60.0 for i in range(5000)]
        verdict = AutomationDetector().test_series("h", "d", times)
        assert verdict.automated

    def test_extreme_interval_values(self):
        times = [0.0, 1e-9, 1e9, 2e9]
        verdict = AutomationDetector().test_series("h", "d", times)
        assert verdict.connections == 4  # no crash, finite divergence


class TestBeliefPropagationEdges:
    def test_empty_seeds(self):
        result = belief_propagation(
            set(), set(), dom_host={}, host_rdom={},
            detect_cc=lambda d: False, similarity_score=lambda d, m: 0.0,
        )
        assert result.hosts == set()
        assert result.domains == set()

    def test_seed_domain_without_traffic(self):
        """IOC seeds for domains not present today must not crash."""
        result = belief_propagation(
            {"h1"}, {"ghost.ru"}, dom_host={}, host_rdom={"h1": set()},
            detect_cc=lambda d: False, similarity_score=lambda d, m: 0.0,
        )
        assert "ghost.ru" in result.domains

    def test_scoring_function_raising_is_not_swallowed(self):
        def bad_score(domain, malicious):
            raise RuntimeError("scorer exploded")

        with pytest.raises(RuntimeError):
            belief_propagation(
                {"h1"}, set(),
                dom_host={"d.ru": {"h1"}}, host_rdom={"h1": {"d.ru"}},
                detect_cc=lambda d: False, similarity_score=bad_score,
            )


class TestStateResilience:
    def test_restore_rejects_missing_keys(self):
        from repro.state import StateError, restore_detector

        with pytest.raises((StateError, KeyError)):
            restore_detector({"version": 1})

    def test_config_round_trip_under_sweep(self):
        from repro.state import decode_config, encode_config

        config = SystemConfig().with_thresholds(similarity=0.33)
        for _ in range(3):
            config = decode_config(encode_config(config))
        assert config.belief_propagation.similarity_threshold == 0.33
