"""Tests for the durable intel store and its evidence sources.

The load-bearing properties: the SQLite store round-trips every
record kind through write-behind batching, expires entries by TTL,
migrates v1 files in place, and refuses corrupt or too-new files; a
fleet re-run against the same ``--intel-db`` detects byte-identically
to the in-memory baseline while converting feed misses into store
hits; RDAP fixtures are a drop-in registration source; and CT
SAN-pivot edges recover sibling campaign domains belief propagation
misses without them -- while ``ct_edges`` off stays byte-identical.
"""

import json
import sqlite3
from pathlib import Path

import pytest

from repro.fleet import FleetManager, load_manifest
from repro.intel.whois_db import WhoisDatabase, WhoisRecord
from repro.intelstore import (
    SCHEMA_VERSION,
    CertObservation,
    CtIndex,
    IntelStore,
    IntelStoreError,
    StoreCachingWhois,
    create_schema,
    expand_ct_seeds,
    load_ct_cached,
    load_ct_log,
    load_registration_registry,
    parse_rdap_document,
    rdap_document,
    registry_from_rdap,
    save_ct_log,
    sibling_map,
)
from repro.synthetic import (
    fleet_cert_observations,
    fleet_rdap_documents,
    write_fleet_layout,
)
from repro.synthetic.fleet import build_fleet_whois
from repro.testing import make_multi_enterprise_dataset

DAYS = 4


class FakeClock:
    """An injectable, manually advanced time source."""

    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# Store durability
# ---------------------------------------------------------------------------

class TestStoreDurability:
    def test_roundtrip_all_record_kinds(self, tmp_path):
        path = tmp_path / "intel.db"
        store = IntelStore(path)
        store.put_vt("evil.c9", True, "t0")
        store.put_vt("unknown.c9", None, "t1")
        store.put_whois(
            "young.c9", WhoisRecord("young.c9", 0.0, 864_000.0), "t0"
        )
        store.put_whois("gone.c9", None, "t1", source="rdap")
        cert = CertObservation("ff" * 32, 0.0, 100.0, "Test CA",
                               ("a.c9", "b.c9"))
        store.put_cert(cert)
        store.record_profile("t0", "evil.c9", 2, 1.0)
        assert store.pending_rows() > 0
        store.flush()
        assert store.pending_rows() == 0
        store.close()

        reopened = IntelStore(path)
        assert reopened.load_vt() == {
            "evil.c9": (True, "t0"), "unknown.c9": (None, "t1"),
        }
        whois = reopened.load_whois()
        assert whois["gone.c9"] == (None, "t1")
        record, owner = whois["young.c9"]
        assert owner == "t0"
        assert record.registered == 0.0 and record.expires == 864_000.0
        assert reopened.load_certs() == [cert]
        profiles = reopened.load_profiles()
        assert profiles[("t0", "evil.c9")]["days_detected"] == 1
        reopened.close()

    def test_flush_batches_and_last_writer_wins(self, tmp_path):
        store = IntelStore(tmp_path / "intel.db", batch_size=2)
        for index in range(5):
            store.put_vt(f"d{index}.c9", True)
        store.put_vt("d0.c9", False)  # upsert: later verdict wins
        flushed = store.flush()
        assert flushed == 6
        assert store.stats.flush_batches >= 3
        assert store.load_vt()["d0.c9"] == (False, "")
        store.close()

    def test_ttl_expiry_and_purge(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "intel.db"
        store = IntelStore(path, ttl_seconds=100.0, clock=clock)
        store.put_vt("old.c9", True)
        clock.now += 60.0
        store.put_vt("new.c9", True)
        store.flush()
        assert set(store.load_vt()) == {"old.c9", "new.c9"}
        clock.now += 80.0  # old is 140s stale, new only 80s
        assert set(store.load_vt()) == {"new.c9"}
        assert store.stats.evictions > 0
        assert store.purge_expired() == 1
        store.close()
        # the lapsed row is physically gone, not just filtered
        survivor = IntelStore(path, clock=clock)
        rows = survivor.stats_document()["tables"]["vt_verdicts"]
        assert rows == 1
        survivor.close()

    def test_profile_upsert_merges_across_flushes(self, tmp_path):
        store = IntelStore(tmp_path / "intel.db")
        store.record_profile("t0", "evil.c9", 3, 0.5)
        store.flush()
        store.record_profile("t0", "evil.c9", 1, 0.9)
        store.record_profile("t0", "evil.c9", 5, 0.2)
        store.flush()
        profile = store.load_profiles()[("t0", "evil.c9")]
        assert profile == {
            "first_day": 1, "last_day": 5,
            "days_detected": 3, "best_score": 0.9,
        }
        store.close()

    def test_v1_file_migrates_in_place(self, tmp_path):
        path = tmp_path / "old.db"
        conn = sqlite3.connect(str(path))
        create_schema(conn, 1)
        conn.execute(
            "INSERT INTO vt_verdicts (domain, reported, tenant, "
            "updated_at, expires_at) VALUES ('evil.c9', 1, 't0', 0, NULL)"
        )
        conn.execute(
            "INSERT INTO whois_records (domain, registered, expires, "
            "tenant, updated_at, expires_at) "
            "VALUES ('young.c9', 0.0, 864000.0, 't0', 0, NULL)"
        )
        conn.commit()
        conn.close()

        store = IntelStore(path)
        assert store.schema_version == SCHEMA_VERSION
        assert store.load_vt() == {"evil.c9": (True, "t0")}
        record, _ = store.load_whois()["young.c9"]
        assert record.expires == 864_000.0
        # v2 tables exist and accept writes after the migration
        store.put_cert(CertObservation("aa" * 32, 0.0, 1.0, "CA", ("x.c9",)))
        store.record_profile("t0", "evil.c9", 1, 1.0)
        store.flush()
        assert len(store.load_certs()) == 1
        store.close()

    def test_future_schema_refused(self, tmp_path):
        path = tmp_path / "future.db"
        conn = sqlite3.connect(str(path))
        create_schema(conn, SCHEMA_VERSION)
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(IntelStoreError, match="newer"):
            IntelStore(path)

    def test_corrupt_file_raises_with_runbook_pointer(self, tmp_path):
        path = tmp_path / "corrupt.db"
        path.write_bytes(b"this is not a sqlite database at all......")
        with pytest.raises(IntelStoreError, match="runbook"):
            IntelStore(path)

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(IntelStoreError):
            IntelStore(tmp_path / "a.db", ttl_seconds=0)
        with pytest.raises(IntelStoreError):
            IntelStore(tmp_path / "b.db", batch_size=0)

    def test_close_flushes_pending(self, tmp_path):
        path = tmp_path / "intel.db"
        store = IntelStore(path)
        store.put_vt("evil.c9", True)
        store.close()  # no explicit flush
        reopened = IntelStore(path)
        assert "evil.c9" in reopened.load_vt()
        reopened.close()


class TestStoreCachingWhois:
    def test_hydrated_entries_answer_without_registry(self, tmp_path):
        path = tmp_path / "intel.db"
        seeded = IntelStore(path)
        seeded.put_whois(
            "young.c9", WhoisRecord("young.c9", 0.0, 864_000.0)
        )
        seeded.close()

        registry = WhoisDatabase()
        registry.register("fresh.c9", 10.0, 964_000.0)
        store = IntelStore(path)
        cache = StoreCachingWhois(store, registry)
        assert cache.lookup("young.c9").registered == 0.0
        assert store.stats.hits["whois"] == 1
        assert cache.lookup("fresh.c9").registered == 10.0
        assert cache.lookup("absent.c9") is None
        assert store.stats.misses["whois"] == 2
        store.flush()
        # novel lookups (including the negative one) were written behind
        assert set(store.load_whois()) == {
            "young.c9", "fresh.c9", "absent.c9",
        }
        store.close()


# ---------------------------------------------------------------------------
# RDAP evidence source
# ---------------------------------------------------------------------------

class TestRdap:
    def test_document_parses_to_normalized_record(self):
        doc = {
            "objectClassName": "domain",
            "ldhName": "Example.COM.",
            "events": [
                {"eventAction": "registration",
                 "eventDate": "1970-01-02T00:00:00Z"},
                {"eventAction": "expiration",
                 "eventDate": "1970-03-01T00:00:00+00:00"},
            ],
            "entities": [{
                "roles": ["registrar"],
                "vcardArray": ["vcard", [["fn", {}, "text", "Reg Inc"]]],
            }],
        }
        record = parse_rdap_document(doc)
        assert record.domain == "example.com"
        assert record.registered == 86_400.0
        assert record.registrar == "Reg Inc"
        whois = record.to_whois_record()
        assert whois.expires > whois.registered

    def test_incomplete_document_yields_no_whois_record(self):
        record = parse_rdap_document({"ldhName": "half.c9"})
        assert record is not None
        assert record.to_whois_record() is None
        assert parse_rdap_document({"events": []}) is None

    def test_fixture_builder_roundtrips(self):
        doc = rdap_document("evil.c9", 0.0, 864_000.0)
        record = parse_rdap_document(doc)
        assert record.to_whois_record() == WhoisRecord(
            "evil.c9", 0.0, 864_000.0
        )

    def test_registry_sniffs_both_formats(self, tmp_path):
        registry = WhoisDatabase()
        registry.register("a.c9", 0.0, 864_000.0)
        whois_path = tmp_path / "whois.json"
        whois_path.write_text(json.dumps(registry.to_json_dict()))
        rdap_path = tmp_path / "rdap.json"
        rdap_path.write_text(json.dumps([
            rdap_document("a.c9", 0.0, 864_000.0),
        ]))
        from_whois = load_registration_registry(whois_path)
        from_rdap = load_registration_registry(rdap_path)
        assert from_whois.to_json_dict() == from_rdap.to_json_dict()

    def test_registry_from_rdap_skips_incomplete(self):
        registry = registry_from_rdap([
            rdap_document("a.c9", 0.0, 864_000.0),
            {"ldhName": "no-dates.c9"},
        ])
        assert "a.c9" in registry
        assert "no-dates.c9" not in registry


# ---------------------------------------------------------------------------
# CT evidence source
# ---------------------------------------------------------------------------

def _index(*san_groups):
    return CtIndex([
        CertObservation(f"{i:02d}" * 32, 0.0, 1.0, "CA", tuple(sans))
        for i, sans in enumerate(san_groups)
    ])


class TestCt:
    def test_siblings_exclude_self_and_fold(self):
        index = _index(("a.c9", "www.b.c9"))
        assert index.siblings("a.c9") == frozenset({"b.c9"})
        assert "a.c9" not in index.siblings("a.c9")
        assert index.siblings("unknown.c9") == frozenset()

    def test_expand_ct_seeds_closes_within_rare(self):
        # a-b share cert 1, b-c share cert 2, c-d share cert 3:
        # the closure walks a -> b -> c but stops at d (not rare)
        index = _index(("a.c9", "b.c9"), ("b.c9", "c.c9"),
                       ("c.c9", "d.c9"))
        added = expand_ct_seeds(
            {"a.c9"}, {"a.c9", "b.c9", "c.c9"}, index
        )
        assert added == {"b.c9", "c.c9"}

    def test_sibling_map_restricted_to_rare(self):
        index = _index(("a.c9", "b.c9", "c.c9"))
        mapping = sibling_map(index, {"a.c9", "b.c9"})
        assert mapping == {
            "a.c9": frozenset({"b.c9"}), "b.c9": frozenset({"a.c9"}),
        }

    def test_log_roundtrip_and_memo(self, tmp_path):
        certs = [CertObservation("ab" * 32, 0.0, 9.0, "CA",
                                 ("a.c9", "b.c9"))]
        path = tmp_path / "certs.json"
        save_ct_log(certs, path)
        loaded = load_ct_log(path)
        assert loaded.observations == tuple(certs)
        assert load_ct_cached(path) is load_ct_cached(path)

    def test_bad_log_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a ct log"}')
        with pytest.raises(ValueError):
            load_ct_log(path)


# ---------------------------------------------------------------------------
# Fleet integration: hydration parity and SAN-pivot recovery
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sibling_fleet():
    return make_multi_enterprise_dataset(3, ct_sibling_domains=1)


@pytest.fixture(scope="module")
def sibling_layout(sibling_fleet, tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("ct-fleet")
    return write_fleet_layout(sibling_fleet, directory, days=DAYS)


@pytest.fixture(scope="module")
def baseline_report(sibling_layout):
    """In-memory run (no store) over the CT-enabled layout."""
    return FleetManager.from_manifest(load_manifest(sibling_layout)).run()


def _detections(report):
    return {t: sorted(d) for t, d in report.detected_by_tenant().items()}


class TestFleetStore:
    def test_rerun_hydrates_and_detects_identically(
        self, sibling_layout, baseline_report, tmp_path
    ):
        db = tmp_path / "intel.db"
        manifest = load_manifest(sibling_layout)
        first = FleetManager.from_manifest(manifest, intel_db=db).run()
        assert _detections(first) == _detections(baseline_report)
        first_store = first.as_dict()["intel"]["store"]
        assert sum(first_store["hits"].values()) == 0
        assert sum(first_store["misses"].values()) > 0
        assert first_store["flushed_rows"] > 0
        first_feed = first.as_dict()["intel"]

        second = FleetManager.from_manifest(
            load_manifest(sibling_layout), intel_db=db
        ).run()
        assert _detections(second) == _detections(baseline_report)
        second_doc = second.as_dict()["intel"]
        assert sum(second_doc["store"]["hits"].values()) > 0
        # hydration converts feed lookups into store hits: strictly
        # fewer VT/WHOIS cache misses than the cold run
        assert (
            second_doc["vt"]["misses"] + second_doc["whois"]["misses"]
            < first_feed["vt"]["misses"] + first_feed["whois"]["misses"]
        )

    def test_store_surfaces_in_report_and_render(
        self, sibling_layout, tmp_path
    ):
        report = FleetManager.from_manifest(
            load_manifest(sibling_layout),
            intel_db=tmp_path / "intel.db",
        ).run()
        assert "store" in report.as_dict()["intel"]
        assert "intel store:" in report.render()

    def test_ct_edges_recover_sibling_domain(
        self, sibling_fleet, sibling_layout, baseline_report, tmp_path
    ):
        sibling = sibling_fleet.shared.ct_sibling_domains[0]
        tenant = sibling_fleet.shared.ct_sibling_tenant
        assert sibling in _detections(baseline_report)[tenant]
        ct_days = [r for r in baseline_report.days if r.ct_seeded]
        assert any(sibling in r.ct_seeded for r in ct_days)

        # strip the certs reference: the sibling goes dark, everything
        # else is byte-identical
        doc = json.loads(sibling_layout.read_text())
        del doc["certs"]
        stripped = sibling_layout.parent / "manifest-noct.json"
        stripped.write_text(json.dumps(doc, indent=1))
        without = FleetManager.from_manifest(load_manifest(stripped)).run()
        assert sibling not in _detections(without)[tenant]
        assert not any(r.ct_seeded for r in without.days)

        def minus_sibling(report):
            return {
                t: sorted(set(d) - {sibling})
                for t, d in report.detected_by_tenant().items()
            }

        assert minus_sibling(without) == minus_sibling(baseline_report)


# ---------------------------------------------------------------------------
# Synthetic fixtures
# ---------------------------------------------------------------------------

class TestSyntheticFixtures:
    def test_cert_fixture_links_campaign_to_sibling(self, sibling_fleet):
        index = CtIndex(fleet_cert_observations(sibling_fleet))
        sibling = sibling_fleet.shared.ct_sibling_domains[0]
        for cc in sibling_fleet.shared.cc_domains:
            assert sibling in index.siblings(cc)

    def test_rdap_fixture_equals_whois_registry(self, sibling_fleet):
        rebuilt = registry_from_rdap(fleet_rdap_documents(sibling_fleet))
        reference = build_fleet_whois(sibling_fleet)
        assert rebuilt.to_json_dict() == reference.to_json_dict()

    def test_layout_references_certs_only_with_siblings(
        self, sibling_layout, tmp_path
    ):
        doc = json.loads(sibling_layout.read_text())
        assert doc["certs"] == "intel/certs.json"
        assert (sibling_layout.parent / "intel" / "certs.json").is_file()
        assert (sibling_layout.parent / "intel" / "rdap.json").is_file()

        plain = make_multi_enterprise_dataset(3)
        manifest = write_fleet_layout(plain, tmp_path / "plain", days=DAYS)
        assert "certs" not in json.loads(manifest.read_text())

    def test_zero_siblings_leaves_world_unchanged(self):
        # fresh datasets on both sides: each tenant's noise RNG is a
        # shared stream, so days must be realized in the same order
        plain = make_multi_enterprise_dataset(3)
        with_ct = make_multi_enterprise_dataset(3, ct_sibling_domains=1)
        sibling = with_ct.shared.ct_sibling_domains[0]
        assert plain.shared.domains == with_ct.shared.domains
        tenant = with_ct.shared.ct_sibling_tenant
        for date in range(1, DAYS + 1):
            plain_day = plain.tenant_day_records(tenant, date)
            ct_day = [
                r for r in with_ct.tenant_day_records(tenant, date)
                if r.domain != sibling
            ]
            assert [
                (r.timestamp, r.domain) for r in plain_day
            ] == [(r.timestamp, r.domain) for r in ct_day]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def _seeded_db(self, tmp_path) -> Path:
        path = tmp_path / "intel.db"
        store = IntelStore(path)
        store.put_vt("evil.c9", True, "t0")
        store.record_profile("t0", "evil.c9", 1, 1.0)
        store.close()
        return path

    def test_intel_stats(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["intel", "stats", str(self._seeded_db(tmp_path))]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["tables"]["vt_verdicts"] == 1

    def test_intel_export(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["intel", "export", str(self._seeded_db(tmp_path))]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["vt_verdicts"]["evil.c9"]["reported"] is True
        assert document["tenant_profiles"]

    def test_intel_vacuum(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["intel", "vacuum", str(self._seeded_db(tmp_path))]) == 0
        assert "expired" in capsys.readouterr().out

    def test_intel_missing_or_corrupt_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["intel", "stats", str(tmp_path / "nope.db")]) == 2
        corrupt = tmp_path / "corrupt.db"
        corrupt.write_bytes(b"garbage bytes, not sqlite..........")
        assert main(["intel", "stats", str(corrupt)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_ttl_flag_requires_db_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "stream", str(tmp_path), "--intel-ttl-days", "7",
        ]) == 2
        assert "--intel-db" in capsys.readouterr().err

    def test_generate_ct_siblings_needs_fleet(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "generate", str(tmp_path / "x"), "--ct-siblings", "1",
        ]) == 2
        assert "--tenants" in capsys.readouterr().err

    def test_stream_intel_db_persists_profiles(self, tmp_path, capsys):
        from repro.cli import main

        logs = tmp_path / "logs"
        assert main([
            "generate", str(logs), "--hosts", "30", "--days", "3",
            "--seed", "5",
        ]) == 0
        db = tmp_path / "stream.db"
        assert main(["stream", str(logs), "--intel-db", str(db)]) in (0, 1)
        out = capsys.readouterr().out
        assert "intel store:" in out
        store = IntelStore(db)
        assert store.load_profiles()
        store.close()


class TestSnapshotCheckerNonzero:
    def test_nonzero_family_assertion(self, tmp_path):
        import sys as _sys

        _sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))
        try:
            from check_metrics_snapshot import check_snapshot
        finally:
            _sys.path.pop(0)
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        metrics.counter("intel_store_hits_total", kind="vt").inc(0)
        metrics.counter("other_total").inc(3)
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(metrics.snapshot().as_dict()))
        path.with_suffix(".prom").write_text("other_total 3\n")
        assert check_snapshot(path, [], ["other_total"]) == []
        problems = check_snapshot(path, [], ["intel_store_hits_total"])
        assert problems and "above zero" in problems[0]
