"""Tests for the file-based DNS log runner."""

from pathlib import Path

import pytest

from repro.logs import format_dns_line
from repro.runner import DnsLogRunner, run_directory


@pytest.fixture(scope="module")
def log_dir(lanl_dataset, tmp_path_factory) -> Path:
    """Bootstrap day (3/1) + two attack days (3/2, 3/3) on disk."""
    directory = tmp_path_factory.mktemp("dnslogs")
    for march_date in (1, 2, 3):
        path = directory / f"dns-march-{march_date:02d}.log"
        with path.open("w") as handle:
            for record in lanl_dataset.day_records(march_date):
                handle.write(format_dns_line(record) + "\n")
    return directory


class TestRunDirectory:
    def test_detects_campaigns_from_files(self, log_dir, lanl_dataset):
        reports = run_directory(
            log_dir,
            bootstrap_files=1,
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        assert len(reports) == 2
        for report, march_date in zip(reports, (2, 3)):
            truth = lanl_dataset.campaign_for_date(march_date)
            assert set(truth.cc_domains) <= report.cc_domains
            assert set(truth.malicious_domains) <= set(report.detected)

    def test_history_carries_across_days(self, log_dir, lanl_dataset):
        reports = run_directory(
            log_dir, bootstrap_files=1,
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        # Popular domains from 3/1 must not be rare on 3/2.
        day2 = reports[0]
        bootstrap_domains = lanl_dataset.bootstrap_domains
        overlap = day2.rare_domains & bootstrap_domains
        assert not overlap

    def test_needs_enough_files(self, log_dir):
        with pytest.raises(ValueError):
            run_directory(log_dir, bootstrap_files=5)

    def test_record_counts_reported(self, log_dir, lanl_dataset):
        reports = run_directory(
            log_dir, bootstrap_files=1,
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        assert all(r.records > 100 for r in reports)


class TestDnsLogRunner:
    def test_hint_mode(self, log_dir, lanl_dataset):
        runner = DnsLogRunner(
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        runner.bootstrap([log_dir / "dns-march-01.log"])
        truth = lanl_dataset.campaign_for_date(2)
        report = runner.process(
            log_dir / "dns-march-02.log", hint_hosts=truth.hint_hosts
        )
        assert set(truth.malicious_domains) <= set(report.detected)

    def test_no_seeds_no_detections_on_quiet_day(self, tmp_path, lanl_dataset):
        quiet = tmp_path / "quiet.log"
        bootstrap = tmp_path / "boot.log"
        records = lanl_dataset.day_records(1)
        half = len(records) // 2
        with bootstrap.open("w") as handle:
            for record in records[:half]:
                handle.write(format_dns_line(record) + "\n")
        with quiet.open("w") as handle:
            for record in records[half:]:
                handle.write(format_dns_line(record) + "\n")
        runner = DnsLogRunner(
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        runner.bootstrap([bootstrap])
        report = runner.process(quiet)
        # March 1 has no campaign, so no multi-host synced beacons.
        assert report.cc_domains == set()

    def test_bootstrap_returns_history_size(self, log_dir, lanl_dataset):
        runner = DnsLogRunner(
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        size = runner.bootstrap([log_dir / "dns-march-01.log"])
        assert size > 50
