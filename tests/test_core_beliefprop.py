"""Unit tests for Algorithm 1 (belief propagation)."""

import pytest

from repro.config import BeliefPropagationConfig
from repro.core import belief_propagation


def run_bp(
    seed_hosts,
    seed_domains,
    dom_host,
    host_rdom,
    cc=frozenset(),
    scores=None,
    **config_kwargs,
):
    scores = scores or {}
    config = BeliefPropagationConfig(**config_kwargs) if config_kwargs else None
    return belief_propagation(
        set(seed_hosts),
        set(seed_domains),
        dom_host={d: set(h) for d, h in dom_host.items()},
        host_rdom={h: set(d) for h, d in host_rdom.items()},
        detect_cc=lambda dom: dom in cc,
        similarity_score=lambda dom, malicious: scores.get(dom, 0.0),
        config=config,
    )


class TestSeeding:
    def test_seed_domains_in_output_sets(self):
        result = run_bp(["h1"], ["seed.ru"], {"seed.ru": ["h1"]}, {"h1": []})
        assert "seed.ru" in result.domains
        assert result.detected_domains == []  # seeds are not detections

    def test_seed_hosts_retained(self):
        result = run_bp(["h1"], [], {}, {"h1": []})
        assert result.hosts == {"h1"}


class TestCcPhase:
    def test_cc_detected_first(self):
        result = run_bp(
            ["h1"], [],
            dom_host={"cc.ru": ["h1", "h2"]},
            host_rdom={"h1": ["cc.ru"], "h2": []},
            cc={"cc.ru"},
        )
        assert "cc.ru" in result.domains
        assert result.detections[0].reason == "cc"
        assert "h2" in result.hosts  # contact expansion

    def test_cc_preempts_similarity(self):
        """When C&C is found, no similarity labeling happens that iteration."""
        result = run_bp(
            ["h1"], [],
            dom_host={"cc.ru": ["h1"], "sim.ru": ["h1"]},
            host_rdom={"h1": ["cc.ru", "sim.ru"]},
            cc={"cc.ru"},
            scores={"sim.ru": 0.99},
        )
        first_iter = result.trace[0]
        assert first_iter.cc_detected == ("cc.ru",)
        assert "sim.ru" not in first_iter.labeled


class TestSimilarityPhase:
    def test_argmax_labeled_when_above_threshold(self):
        result = run_bp(
            ["h1"], ["seed.ru"],
            dom_host={"seed.ru": ["h1"], "a.ru": ["h1"], "b.ru": ["h1"]},
            host_rdom={"h1": ["a.ru", "b.ru"]},
            scores={"a.ru": 0.9, "b.ru": 0.6},
            similarity_threshold=0.5,
        )
        assert result.detections[1].domain == "a.ru"  # index 0 is the seed
        assert "b.ru" in result.domains  # labeled on a later iteration

    def test_below_threshold_stops(self):
        result = run_bp(
            ["h1"], ["seed.ru"],
            dom_host={"seed.ru": ["h1"], "a.ru": ["h1"]},
            host_rdom={"h1": ["a.ru"]},
            scores={"a.ru": 0.2},
            similarity_threshold=0.5,
        )
        assert "a.ru" not in result.domains
        assert result.trace[-1].labeled == ()

    def test_one_domain_per_iteration(self):
        result = run_bp(
            ["h1"], ["seed.ru"],
            dom_host={"seed.ru": ["h1"], "a.ru": ["h1"], "b.ru": ["h1"]},
            host_rdom={"h1": ["a.ru", "b.ru"]},
            scores={"a.ru": 0.9, "b.ru": 0.9},
        )
        labeled_per_iter = [len(t.labeled) for t in result.trace if t.labeled]
        assert all(n == 1 for n in labeled_per_iter)

    def test_deterministic_tie_break(self):
        result = run_bp(
            ["h1"], ["seed.ru"],
            dom_host={"seed.ru": ["h1"], "a.ru": ["h1"], "b.ru": ["h1"]},
            host_rdom={"h1": ["a.ru", "b.ru"]},
            scores={"a.ru": 0.9, "b.ru": 0.9},
        )
        # Ties break toward the lexicographically larger key via max();
        # what matters is determinism across runs.
        again = run_bp(
            ["h1"], ["seed.ru"],
            dom_host={"seed.ru": ["h1"], "a.ru": ["h1"], "b.ru": ["h1"]},
            host_rdom={"h1": ["a.ru", "b.ru"]},
            scores={"a.ru": 0.9, "b.ru": 0.9},
        )
        assert [d.domain for d in result.detections] == [
            d.domain for d in again.detections
        ]


class TestExpansion:
    def test_host_expansion_pulls_new_rare_domains(self):
        """Labeling a domain adds its hosts; their rare domains join R."""
        result = run_bp(
            ["h1"], [],
            dom_host={"cc.ru": ["h1", "h2"], "second.ru": ["h2"]},
            host_rdom={"h1": ["cc.ru"], "h2": ["second.ru"]},
            cc={"cc.ru"},
            scores={"second.ru": 0.9},
        )
        assert "second.ru" in result.domains
        assert result.hosts == {"h1", "h2"}

    def test_transitive_community_discovery(self):
        """Figure 8 shape: seed -> host -> sibling domains -> more hosts."""
        result = run_bp(
            ["h5"], ["seed.ru"],
            dom_host={
                "seed.ru": ["h5"],
                "ramdo1.org": ["h5", "h6"],
                "ramdo2.org": ["h6", "h7"],
            },
            host_rdom={
                "h5": ["ramdo1.org"],
                "h6": ["ramdo1.org", "ramdo2.org"],
                "h7": ["ramdo2.org"],
            },
            scores={"ramdo1.org": 0.9, "ramdo2.org": 0.8},
        )
        assert result.domains == {"seed.ru", "ramdo1.org", "ramdo2.org"}
        assert result.hosts == {"h5", "h6", "h7"}


class TestTermination:
    def test_max_iterations_respected(self):
        domains = {f"d{i}.ru": ["h1"] for i in range(20)}
        domains["seed.ru"] = ["h1"]
        result = run_bp(
            ["h1"], ["seed.ru"],
            dom_host=domains,
            host_rdom={"h1": [d for d in domains if d != "seed.ru"]},
            scores={d: 0.9 for d in domains},
            max_iterations=3,
        )
        assert result.iterations == 3
        assert len(result.detected_domains) == 3

    def test_stops_when_frontier_empty(self):
        result = run_bp(["h1"], [], {}, {"h1": []})
        assert result.iterations == 1
        assert result.detected_domains == []

    def test_no_infinite_loop_on_cc_everywhere(self):
        result = run_bp(
            ["h1"], [],
            dom_host={"a.ru": ["h1"], "b.ru": ["h1"]},
            host_rdom={"h1": ["a.ru", "b.ru"]},
            cc={"a.ru", "b.ru"},
            max_iterations=10,
        )
        assert result.domains == {"a.ru", "b.ru"}
        assert result.iterations <= 10


class TestProvenance:
    def test_trace_records_frontier_and_scores(self):
        result = run_bp(
            ["h1"], ["seed.ru"],
            dom_host={"seed.ru": ["h1"], "a.ru": ["h1"]},
            host_rdom={"h1": ["a.ru"]},
            scores={"a.ru": 0.77},
        )
        first = result.trace[0]
        assert first.frontier_size == 1
        assert first.top_score == pytest.approx(0.77)

    def test_graph_matches_result_sets(self):
        result = run_bp(
            ["h1"], [],
            dom_host={"cc.ru": ["h1", "h2"]},
            host_rdom={"h1": ["cc.ru"], "h2": []},
            cc={"cc.ru"},
        )
        assert set(result.graph.hosts) == result.hosts
        assert set(result.graph.domains) == result.domains

    def test_detection_order_is_suspiciousness_order(self):
        result = run_bp(
            ["h1"], ["seed.ru"],
            dom_host={"seed.ru": ["h1"], "a.ru": ["h1"], "b.ru": ["h1"]},
            host_rdom={"h1": ["a.ru", "b.ru"]},
            scores={"a.ru": 0.9, "b.ru": 0.6},
            similarity_threshold=0.5,
        )
        assert result.detected_domains == ["a.ru", "b.ru"]
