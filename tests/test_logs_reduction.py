"""Unit tests for the reduction funnel (Section IV-A, Figure 2)."""

from repro.logs import DnsRecord, DnsRecordType, ReductionFunnel


def rec(domain, *, ts=100.0, src="10.0.0.1", rtype=DnsRecordType.A):
    return DnsRecord(timestamp=ts, source_ip=src, domain=domain, record_type=rtype)


class TestReductionFunnel:
    def test_keeps_external_client_a_records(self):
        funnel = ReductionFunnel(("int.c0",), frozenset({"10.0.0.250"}))
        out = list(funnel.reduce([rec("evil.example.c3")]))
        assert len(out) == 1

    def test_drops_non_a(self):
        funnel = ReductionFunnel()
        out = list(funnel.reduce([rec("a.c3", rtype=DnsRecordType.TXT)]))
        assert out == []

    def test_drops_internal_queries(self):
        funnel = ReductionFunnel(("int.c0",))
        out = list(funnel.reduce([rec("printer.int.c0")]))
        assert out == []

    def test_drops_server_queries(self):
        funnel = ReductionFunnel(server_ips=frozenset({"10.0.0.250"}))
        out = list(funnel.reduce([rec("a.c3", src="10.0.0.250")]))
        assert out == []

    def test_funnel_is_monotone_per_step(self):
        """Each successive step must retain a subset of the previous."""
        funnel = ReductionFunnel(("int.c0",), frozenset({"10.0.0.250"}))
        records = [
            rec("a.c3"),
            rec("b.c3", rtype=DnsRecordType.PTR),
            rec("x.int.c0"),
            rec("c.c3", src="10.0.0.250"),
            rec("d.c3"),
        ]
        list(funnel.reduce(records))
        day = 100.0 // 86_400
        counts = [
            funnel.stats.domain_counts(step).get(int(day), 0)
            for step in (
                "all",
                "a_records",
                "filter_internal_queries",
                "filter_internal_servers",
            )
        ]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == 5
        assert counts[-1] == 2  # a.c3 and d.c3 survive

    def test_record_counts_tracked(self):
        funnel = ReductionFunnel()
        list(funnel.reduce([rec("a.c3"), rec("a.c3"), rec("b.c3")]))
        assert funnel.stats.record_counts("all")[0] == 3
        assert funnel.stats.domain_counts("all")[0] == 2

    def test_profiling_steps_recorded(self):
        funnel = ReductionFunnel()
        funnel.observe_profiling_step("rare", 5, ["x.c3", "y.c3"])
        assert funnel.stats.domain_counts("rare")[5] == 2

    def test_days_enumeration(self):
        funnel = ReductionFunnel()
        list(funnel.reduce([rec("a.c3", ts=10.0), rec("b.c3", ts=86_400.0 + 5)]))
        assert funnel.stats.days() == [0, 1]

    def test_folding_merges_subdomains(self):
        funnel = ReductionFunnel(fold_level=2)
        list(funnel.reduce([rec("x.evil.com"), rec("y.evil.com")]))
        assert funnel.stats.domain_counts("all")[0] == 1
