"""Integration tests: the LANL challenge end to end (Section V)."""

import pytest

from repro.eval import LanlChallengeSolver, sweep_histogram_parameters, timing_gap_samples
from repro.synthetic import TRAINING_DATES


class TestChallengeReport:
    def test_all_twenty_days_solved(self, lanl_report):
        assert len(lanl_report.outcomes) == 20

    def test_overall_accuracy_matches_paper_shape(self, lanl_report):
        """Paper: TDR 98.33%, FDR 1.67%, FNR 6.25% -- we require the
        same regime: high precision, low miss rate."""
        overall = lanl_report.overall
        assert overall.tdr >= 0.9
        assert overall.fdr <= 0.1
        assert overall.fnr <= 0.15

    def test_testing_split_also_accurate(self, lanl_report):
        testing = lanl_report.totals(training=False)
        assert testing.tdr >= 0.85

    def test_case4_detected_without_hints(self, lanl_report):
        case4 = [o for o in lanl_report.outcomes if o.case == 4]
        assert len(case4) == 1
        assert case4[0].counts.true_positives >= 3
        assert case4[0].cc_seeds  # C&C seeding actually happened

    def test_counts_partition_by_case(self, lanl_report):
        total = sum(
            (lanl_report.counts_for(case, training)
             for case in (1, 2, 3, 4) for training in (True, False)),
            start=lanl_report.counts_for(1, True).__class__(0, 0, 0),
        )
        overall = lanl_report.overall
        assert total.true_positives == overall.true_positives
        assert total.false_positives == overall.false_positives

    def test_detections_ordered_by_iteration(self, lanl_report):
        for outcome in lanl_report.outcomes:
            if outcome.bp_result is None:
                continue
            iterations = [
                d.iteration for d in outcome.bp_result.detections
                if d.reason != "seed"
            ]
            assert iterations == sorted(iterations)


class TestCcDetectionWithinChallenge:
    def test_cc_domain_found_on_hinted_days(self, lanl_dataset):
        solver = LanlChallengeSolver(lanl_dataset)
        context = solver.day_context(2)
        cc, verdicts = solver.detect_cc_domains(context)
        truth = lanl_dataset.campaign_for_date(2)
        assert set(truth.cc_domains) <= cc
        assert verdicts

    def test_cc_heuristic_rejects_benign_automation(self, lanl_dataset):
        solver = LanlChallengeSolver(lanl_dataset)
        context = solver.day_context(2)
        cc, _ = solver.detect_cc_domains(context)
        truth = set(lanl_dataset.campaign_for_date(2).malicious_domains)
        assert cc <= truth  # nothing benign labeled C&C


class TestTimingGaps:
    def test_figure3_shape(self, lanl_dataset):
        """Malicious-malicious gaps stochastically dominate (are
        smaller than) malicious-legitimate gaps."""
        solver = LanlChallengeSolver(lanl_dataset)
        dates = sorted(TRAINING_DATES)[:5]
        mal_mal, mal_legit = timing_gap_samples(solver, dates)
        assert mal_mal and mal_legit
        import statistics

        assert statistics.median(mal_mal) < statistics.median(mal_legit)

    def test_paper_checkpoint_160s(self, lanl_dataset):
        """Paper: 56% of mal-mal gaps < 160 s vs 3.8% of mal-legit.
        We require a wide separation at the same checkpoint."""
        from repro.eval import cdf_at

        solver = LanlChallengeSolver(lanl_dataset)
        mal_mal, mal_legit = timing_gap_samples(solver, sorted(TRAINING_DATES))
        assert cdf_at(mal_mal, 160.0) > 3 * cdf_at(mal_legit, 160.0)


class TestParameterSweep:
    @pytest.fixture(scope="class")
    def sweep(self, lanl_dataset):
        return sweep_histogram_parameters(
            lanl_dataset,
            bin_widths=(5.0, 10.0),
            thresholds=(0.0, 0.06),
        )

    def test_row_count(self, sweep):
        assert len(sweep) == 4

    def test_looser_threshold_never_detects_fewer(self, sweep):
        """Table II monotonicity: raising JT at fixed W can only add
        automated pairs."""
        by_width = {}
        for row in sweep:
            by_width.setdefault(row.bin_width, []).append(row)
        for rows in by_width.values():
            rows.sort(key=lambda r: r.jeffrey_threshold)
            for earlier, later in zip(rows, rows[1:]):
                assert later.all_pairs_testing >= earlier.all_pairs_testing
                assert (later.malicious_pairs_training
                        >= earlier.malicious_pairs_training)

    def test_chosen_parameters_capture_malicious_pairs(self, sweep):
        chosen = next(
            r for r in sweep
            if r.bin_width == 10.0 and r.jeffrey_threshold == 0.06
        )
        assert chosen.malicious_pairs_training > 0
        assert chosen.malicious_pairs_testing > 0
