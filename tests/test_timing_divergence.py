"""Unit tests for Jeffrey divergence and the periodic reference."""

import math

import pytest

from repro.timing import (
    build_histogram,
    divergence_from_periodic,
    jeffrey_divergence,
    l1_distance,
    periodic_reference,
)


def hist(values, width=10.0):
    return build_histogram(values, bin_width=width)


class TestPeriodicReference:
    def test_all_mass_on_dominant_hub(self):
        h = hist([600.0, 600.0, 600.0, 30.0])
        ref = periodic_reference(h)
        assert ref == {600.0: 1.0}

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            periodic_reference(hist([]))


class TestJeffreyDivergence:
    def test_identical_is_zero(self):
        h = hist([600.0] * 5)
        assert jeffrey_divergence(h, periodic_reference(h)) == pytest.approx(0.0)

    def test_bounded_by_2_log_2(self):
        h = hist([1.0, 100.0, 200.0, 300.0, 400.0], width=5.0)
        d = jeffrey_divergence(h, {999.0: 1.0})
        assert d <= 2 * math.log(2) + 1e-9

    def test_symmetric_in_structure(self):
        # Two-bin histogram vs single-bin reference must equal the
        # closed form: f log(2f/(f+1)) + log(2/(f+1)) + (1-f) log 2.
        h = hist([600.0, 600.0, 600.0, 50.0])
        f = 0.75
        expected = (
            f * math.log(2 * f / (f + 1))
            + math.log(2 / (f + 1))
            + (1 - f) * math.log(2)
        )
        assert jeffrey_divergence(h, periodic_reference(h)) == pytest.approx(expected)

    def test_more_concentrated_is_closer(self):
        concentrated = hist([600.0] * 9 + [50.0])
        spread = hist([600.0] * 5 + [50.0] * 5)
        d_c = divergence_from_periodic(concentrated)
        d_s = divergence_from_periodic(spread)
        assert d_c < d_s

    def test_non_negative(self):
        h = hist([10.0, 400.0, 800.0], width=5.0)
        assert divergence_from_periodic(h) >= 0.0


class TestL1Distance:
    def test_identical_is_zero(self):
        h = hist([600.0] * 4)
        assert l1_distance(h, periodic_reference(h)) == 0.0

    def test_l1_closed_form(self):
        h = hist([600.0, 600.0, 600.0, 50.0])
        # |0.75 - 1| + |0.25 - 0| = 0.5
        assert l1_distance(h, periodic_reference(h)) == pytest.approx(0.5)

    def test_metric_selector(self):
        h = hist([600.0, 600.0, 50.0])
        assert divergence_from_periodic(h, metric="l1") == pytest.approx(
            l1_distance(h, periodic_reference(h))
        )

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            divergence_from_periodic(hist([1.0]), metric="chi2")

    def test_jeffrey_and_l1_agree_on_ordering(self):
        """The paper found both metrics "very similar" -- orderings match."""
        series = [
            hist([600.0] * 9 + [50.0]),
            hist([600.0] * 7 + [50.0] * 3),
            hist([600.0] * 5 + [50.0] * 5),
        ]
        jeffreys = [divergence_from_periodic(h) for h in series]
        l1s = [divergence_from_periodic(h, metric="l1") for h in series]
        assert jeffreys == sorted(jeffreys)
        assert l1s == sorted(l1s)
