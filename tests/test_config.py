"""Tests for configuration objects."""

import dataclasses

import pytest

from repro.config import (
    ENTERPRISE_CONFIG,
    LANL_CONFIG,
    BeliefPropagationConfig,
    HistogramConfig,
    RarityConfig,
    SystemConfig,
)


class TestDefaults:
    def test_paper_histogram_parameters(self):
        config = HistogramConfig()
        assert config.bin_width == 10.0
        assert config.jeffrey_threshold == 0.06

    def test_paper_rarity_threshold(self):
        assert RarityConfig().unpopular_max_hosts == 10
        assert RarityConfig().rare_ua_max_hosts == 10

    def test_paper_bp_thresholds(self):
        config = BeliefPropagationConfig()
        assert config.cc_score_threshold == 0.4
        assert config.max_domains_per_iteration == 1

    def test_lanl_config_specializations(self):
        assert LANL_CONFIG.rarity.fold_level == 3
        assert LANL_CONFIG.belief_propagation.similarity_threshold == 0.25
        assert LANL_CONFIG.belief_propagation.max_iterations == 5

    def test_enterprise_config_folds_second_level(self):
        assert ENTERPRISE_CONFIG.rarity.fold_level == 2


class TestWithThresholds:
    def test_overrides_similarity_only(self):
        config = SystemConfig().with_thresholds(similarity=0.6)
        assert config.belief_propagation.similarity_threshold == 0.6
        assert config.belief_propagation.cc_score_threshold == 0.4

    def test_overrides_both(self):
        config = SystemConfig().with_thresholds(similarity=0.5, cc_score=0.45)
        assert config.belief_propagation.similarity_threshold == 0.5
        assert config.belief_propagation.cc_score_threshold == 0.45

    def test_original_untouched(self):
        base = SystemConfig()
        base.with_thresholds(similarity=0.9)
        assert base.belief_propagation.similarity_threshold == 0.4

    def test_no_overrides_is_equal_copy(self):
        base = SystemConfig()
        assert base.with_thresholds() == base


class TestImmutability:
    def test_configs_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            HistogramConfig().bin_width = 5.0
        with pytest.raises(dataclasses.FrozenInstanceError):
            SystemConfig().training_days = 1
