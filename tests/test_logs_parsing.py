"""Unit tests for DNS and proxy log serialization/parsing."""

import pytest

from repro.logs import (
    DnsLogFormatError,
    DnsRecord,
    DnsRecordType,
    ProxyLogFormatError,
    ProxyRecord,
    format_dns_line,
    format_proxy_line,
    parse_dns_line,
    parse_dns_log,
    parse_proxy_line,
    parse_proxy_log,
)
from repro.logs.dns import is_a_record, is_external_query, is_from_client


def make_dns(**overrides) -> DnsRecord:
    base = dict(
        timestamp=1000.5,
        source_ip="10.0.0.1",
        domain="evil.example.com",
        record_type=DnsRecordType.A,
        resolved_ip="93.184.216.34",
    )
    base.update(overrides)
    return DnsRecord(**base)


def make_proxy(**overrides) -> ProxyRecord:
    base = dict(
        timestamp=2000.25,
        source_ip="172.16.0.9",
        destination="www.evil.example.com",
        destination_ip="93.184.216.34",
        url_path="/logo.gif",
        method="GET",
        status_code=200,
        user_agent="Mozilla/5.0 (Windows NT 6.1) Corp/35.0",
        referer="http://portal.example/",
        tz_offset_hours=-5.0,
    )
    base.update(overrides)
    return ProxyRecord(**base)


class TestDnsRoundTrip:
    def test_round_trip(self):
        record = make_dns()
        assert parse_dns_line(format_dns_line(record)) == record

    def test_missing_resolution_round_trips(self):
        record = make_dns(resolved_ip="")
        line = format_dns_line(record)
        assert line.endswith(" -")
        assert parse_dns_line(line) == record

    def test_non_a_round_trips(self):
        record = make_dns(record_type=DnsRecordType.TXT, resolved_ip="")
        assert parse_dns_line(format_dns_line(record)) == record

    def test_wrong_field_count(self):
        with pytest.raises(DnsLogFormatError):
            parse_dns_line("1000.5 10.0.0.1 A evil.com")

    def test_bad_timestamp(self):
        with pytest.raises(DnsLogFormatError):
            parse_dns_line("nan-ish 10.0.0.1 A evil.com 1.2.3.4".replace("nan-ish", "xx"))

    def test_unknown_record_type(self):
        with pytest.raises(DnsLogFormatError):
            parse_dns_line("1.0 10.0.0.1 ZZZ evil.com 1.2.3.4")

    def test_stream_skips_malformed(self):
        lines = [format_dns_line(make_dns()), "garbage", "", format_dns_line(make_dns(domain="b.co"))]
        parsed = list(parse_dns_log(lines))
        assert len(parsed) == 2

    def test_stream_raises_when_strict(self):
        with pytest.raises(DnsLogFormatError):
            list(parse_dns_log(["garbage"], skip_malformed=False))


class TestProxyRoundTrip:
    def test_round_trip(self):
        record = make_proxy()
        assert parse_proxy_line(format_proxy_line(record)) == record

    def test_empty_optional_fields(self):
        record = make_proxy(user_agent="", referer="", destination_ip="")
        assert parse_proxy_line(format_proxy_line(record)) == record

    def test_ua_with_spaces_survives(self):
        record = make_proxy(user_agent="Agent With Many Spaces 1.0")
        parsed = parse_proxy_line(format_proxy_line(record))
        assert parsed.user_agent == "Agent With Many Spaces 1.0"

    def test_tabs_in_fields_are_sanitized(self):
        record = make_proxy(user_agent="bad\tagent")
        parsed = parse_proxy_line(format_proxy_line(record))
        assert "\t" not in parsed.user_agent

    def test_wrong_field_count(self):
        with pytest.raises(ProxyLogFormatError):
            parse_proxy_line("a\tb\tc")

    def test_bad_status(self):
        line = format_proxy_line(make_proxy()).replace("\t200\t", "\tabc\t")
        with pytest.raises(ProxyLogFormatError):
            parse_proxy_line(line)

    def test_stream_skips_blank_and_bad(self):
        lines = ["", format_proxy_line(make_proxy()), "junk\tline"]
        assert len(list(parse_proxy_log(lines))) == 1

    def test_strict_mode_raises(self):
        with pytest.raises(ProxyLogFormatError):
            list(parse_proxy_log(["junk"], skip_malformed=False))


class TestDnsFilters:
    def test_is_a_record(self):
        assert is_a_record(make_dns())
        assert not is_a_record(make_dns(record_type=DnsRecordType.TXT))

    def test_external_query(self):
        assert is_external_query(make_dns(), ("corp.internal",))
        internal = make_dns(domain="fileserver.corp.internal")
        assert not is_external_query(internal, ("corp.internal",))

    def test_from_client(self):
        servers = frozenset({"10.0.0.250"})
        assert is_from_client(make_dns(), servers)
        assert not is_from_client(make_dns(source_ip="10.0.0.250"), servers)


class TestRecordProperties:
    def test_connection_day(self):
        from repro.logs import Connection

        conn = Connection(timestamp=86_400.0 * 3 + 10, host="h", domain="d.com")
        assert conn.day == 3

    def test_proxy_has_referer(self):
        assert make_proxy().has_referer
        assert not make_proxy(referer="").has_referer

    def test_dns_is_a_record_property(self):
        assert make_dns().is_a_record
        assert not make_dns(record_type=DnsRecordType.MX).is_a_record
