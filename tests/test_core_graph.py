"""Unit tests for the bipartite infection graph."""

import pytest

from repro.core import InfectionGraph, Label


def small_graph():
    graph = InfectionGraph()
    graph.add_host("h1", Label.SEED, 0)
    graph.add_domain("cc.ru", Label.CC_DETECTED, 1, score=1.0)
    graph.add_domain("pay.ru", Label.SIMILARITY, 2, score=0.8)
    graph.add_host("h2", Label.CONTACT, 1)
    graph.add_edge("h1", "cc.ru")
    graph.add_edge("h2", "cc.ru")
    graph.add_edge("h1", "pay.ru")
    return graph


class TestInfectionGraph:
    def test_node_count(self):
        assert small_graph().node_count == 4

    def test_duplicate_add_returns_false(self):
        graph = small_graph()
        assert not graph.add_host("h1", Label.CONTACT, 5)
        assert graph.hosts["h1"].label is Label.SEED  # first record wins

    def test_edge_requires_existing_nodes(self):
        graph = small_graph()
        with pytest.raises(KeyError):
            graph.add_edge("ghost", "cc.ru")
        with pytest.raises(KeyError):
            graph.add_edge("h1", "ghost.ru")

    def test_domains_by_iteration(self):
        by_iter = small_graph().domains_by_iteration()
        assert by_iter == {1: ["cc.ru"], 2: ["pay.ru"]}

    def test_to_networkx_bipartite(self):
        nx_graph = small_graph().to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 3
        assert nx_graph.nodes["h1"]["bipartite"] == 0
        assert nx_graph.nodes["cc.ru"]["bipartite"] == 1
        assert nx_graph.nodes["pay.ru"]["score"] == 0.8

    def test_networkx_connected_community(self):
        import networkx as nx

        assert nx.is_connected(small_graph().to_networkx())

    def test_ascii_render_mentions_everything(self):
        text = small_graph().ascii_render()
        for name in ("h1", "h2", "cc.ru", "pay.ru"):
            assert name in text
        assert "edges: 3" in text

    def test_edge_set_deduplicates(self):
        graph = small_graph()
        graph.add_edge("h1", "cc.ru")
        assert len(graph.edges) == 3
