"""Documentation gates: docstring coverage and doc-file integrity.

The CI runs ``tools/check_docstrings.py`` as its own step; this test
makes the same gate part of tier-1 so a missing docstring fails fast
locally, and keeps the architecture docs' cross-links from rotting.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _checker():
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import check_docstrings
    finally:
        sys.path.pop(0)
    return check_docstrings


class TestDocstringCoverage:
    def test_src_repro_is_fully_documented(self, capsys):
        checker = _checker()
        assert checker.main(["check_docstrings"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_checker_flags_missing_module_docstring(self, tmp_path):
        checker = _checker()
        bad = tmp_path / "src" / "pkg"
        bad.mkdir(parents=True)
        (bad / "mod.py").write_text("def f():\n    x = 1\n    return x\n")
        problems = checker.check_file(bad / "mod.py", bad)
        assert any("module docstring" in p for p in problems)
        assert any("missing docstring on f" in p for p in problems)


class TestDocFiles:
    def test_docs_exist_and_are_linked_from_readme(self):
        readme = (REPO / "README.md").read_text()
        for name in ("docs/ARCHITECTURE.md", "docs/OPERATIONS.md"):
            assert (REPO / name).is_file()
            assert name in readme

    def test_architecture_links_resolve(self):
        text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        for target in re.findall(r"\]\(([^)#]+)\)", text):
            assert (REPO / "docs" / target).resolve().exists(), target

    def test_paper_md_has_real_content(self):
        text = (REPO / "PAPER.md").read_text()
        assert "Oprea" in text
        assert "belief propagation" in text.lower()
        assert len(text) > 1500
