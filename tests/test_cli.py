"""Tests for the repro-detect command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_lanl_defaults(self):
        args = build_parser().parse_args(["lanl"])
        assert args.seed == 42

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestTimingCommand:
    def test_beacon_detected(self, tmp_path, capsys):
        series = tmp_path / "series.txt"
        series.write_text("\n".join(str(600.0 * i) for i in range(8)))
        code = main(["timing", str(series)])
        out = capsys.readouterr().out
        assert code == 0
        assert "automated:    YES" in out
        assert "period:       600.0 s" in out

    def test_browsing_not_detected(self, tmp_path, capsys):
        series = tmp_path / "series.txt"
        series.write_text("\n".join(str(t) for t in (0, 55, 300, 1234, 1500, 4000)))
        code = main(["timing", str(series)])
        assert code == 1
        assert "automated:    no" in capsys.readouterr().out

    def test_bad_input(self, tmp_path, capsys):
        series = tmp_path / "series.txt"
        series.write_text("not-a-number\n")
        assert main(["timing", str(series)]) == 2

    def test_custom_threshold(self, tmp_path):
        series = tmp_path / "series.txt"
        values, t = [], 0.0
        for i in range(10):
            values.append(t)
            t += 600.0 + (40.0 if i % 2 else -40.0)
        series.write_text("\n".join(map(str, values)))
        strict = main(["timing", str(series), "--threshold", "0.0"])
        loose = main(["timing", str(series), "--threshold", "1.0",
                      "--bin-width", "100"])
        assert strict == 1
        assert loose == 0


class TestGenerateCommand:
    def test_writes_logs_and_truth(self, tmp_path, capsys):
        out_dir = tmp_path / "logs"
        code = main([
            "generate", str(out_dir), "--hosts", "40", "--days", "2",
            "--netflow",
        ])
        assert code == 0
        assert (out_dir / "dns-march-01.log").exists()
        assert (out_dir / "dns-march-02.log").exists()
        assert (out_dir / "netflow-march-01.log").exists()
        assert (out_dir / "ground_truth.txt").exists()

    def test_generated_logs_parse_back(self, tmp_path):
        from repro.logs import parse_dns_log

        out_dir = tmp_path / "logs"
        main(["generate", str(out_dir), "--hosts", "30", "--days", "1"])
        with (out_dir / "dns-march-01.log").open() as handle:
            records = list(parse_dns_log(handle))
        assert len(records) > 100


class TestLanlCommand:
    def test_prints_table_and_rates(self, capsys):
        code = main(["lanl", "--hosts", "50", "--bootstrap-days", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "LANL challenge results" in out
        assert "TDR=" in out
