"""Tests for the repro-detect command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_lanl_defaults(self):
        args = build_parser().parse_args(["lanl"])
        assert args.seed == 42

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestTimingCommand:
    def test_beacon_detected(self, tmp_path, capsys):
        series = tmp_path / "series.txt"
        series.write_text("\n".join(str(600.0 * i) for i in range(8)))
        code = main(["timing", str(series)])
        out = capsys.readouterr().out
        assert code == 0
        assert "automated:    YES" in out
        assert "period:       600.0 s" in out

    def test_browsing_not_detected(self, tmp_path, capsys):
        series = tmp_path / "series.txt"
        series.write_text("\n".join(str(t) for t in (0, 55, 300, 1234, 1500, 4000)))
        code = main(["timing", str(series)])
        assert code == 1
        assert "automated:    no" in capsys.readouterr().out

    def test_bad_input(self, tmp_path, capsys):
        series = tmp_path / "series.txt"
        series.write_text("not-a-number\n")
        assert main(["timing", str(series)]) == 2

    def test_custom_threshold(self, tmp_path):
        series = tmp_path / "series.txt"
        values, t = [], 0.0
        for i in range(10):
            values.append(t)
            t += 600.0 + (40.0 if i % 2 else -40.0)
        series.write_text("\n".join(map(str, values)))
        strict = main(["timing", str(series), "--threshold", "0.0"])
        loose = main(["timing", str(series), "--threshold", "1.0",
                      "--bin-width", "100"])
        assert strict == 1
        assert loose == 0


class TestGenerateCommand:
    def test_writes_logs_and_truth(self, tmp_path, capsys):
        out_dir = tmp_path / "logs"
        code = main([
            "generate", str(out_dir), "--hosts", "40", "--days", "2",
            "--netflow",
        ])
        assert code == 0
        assert (out_dir / "dns-march-01.log").exists()
        assert (out_dir / "dns-march-02.log").exists()
        assert (out_dir / "netflow-march-01.log").exists()
        assert (out_dir / "ground_truth.txt").exists()

    def test_generated_logs_parse_back(self, tmp_path):
        from repro.logs import parse_dns_log

        out_dir = tmp_path / "logs"
        main(["generate", str(out_dir), "--hosts", "30", "--days", "1"])
        with (out_dir / "dns-march-01.log").open() as handle:
            records = list(parse_dns_log(handle))
        assert len(records) > 100


class TestLanlCommand:
    def test_prints_table_and_rates(self, capsys):
        code = main(["lanl", "--hosts", "50", "--bootstrap-days", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "LANL challenge results" in out
        assert "TDR=" in out


class TestEnterpriseStreamCommand:
    @pytest.fixture(scope="class")
    def layout(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("entcli") / "ent"
        assert main([
            "generate", str(out), "--pipeline", "enterprise",
            "--hosts", "30", "--days", "3", "--seed", "7",
        ]) == 0
        return out

    def test_generate_writes_enterprise_layout(self, layout):
        assert (layout / "proxy-march-01.log").exists()
        assert (layout / "proxy-march-03.log").exists()
        assert (layout / "model.json").exists()
        assert (layout / "whois.json").exists()
        assert (layout / "ground_truth.txt").exists()

    def test_stream_enterprise_runs(self, layout, capsys):
        code = main([
            "stream", str(layout), "--pipeline", "enterprise",
            "--model-state", str(layout / "model.json"),
            "--whois", str(layout / "whois.json"),
            "--bootstrap-files", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("records,") == 3

    def test_stream_enterprise_interrupt_resume(self, layout, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.json"
        base = [
            "stream", str(layout), "--pipeline", "enterprise",
            "--model-state", str(layout / "model.json"),
            "--whois", str(layout / "whois.json"),
            "--bootstrap-files", "0", "--batch-size", "300",
            "--checkpoint", str(ckpt),
        ]
        assert main(base + ["--max-batches", "4"]) == 3
        assert "interrupted after 4 micro-batches" in capsys.readouterr().out
        assert main(base + ["--resume"]) == 0
        assert "records," in capsys.readouterr().out

    def test_enterprise_requires_model_state(self, tmp_path, capsys):
        assert main([
            "stream", str(tmp_path), "--pipeline", "enterprise",
        ]) == 2
        assert "--model-state" in capsys.readouterr().err

    def test_dns_rejects_enterprise_flags(self, tmp_path, capsys):
        assert main([
            "stream", str(tmp_path), "--model-state", "m.json",
        ]) == 2
        assert "only valid" in capsys.readouterr().err
        assert main([
            "stream", str(tmp_path), "--whois", "w.json",
        ]) == 2
        assert "only valid" in capsys.readouterr().err

    def test_enterprise_rejects_internal_suffix(self, tmp_path, capsys):
        assert main([
            "stream", str(tmp_path), "--pipeline", "enterprise",
            "--model-state", "m.json", "--internal-suffix", "int.c0",
        ]) == 2
        assert "reduction funnel" in capsys.readouterr().err

    def test_generate_rejects_bad_combos(self, tmp_path, capsys):
        out = str(tmp_path / "x")
        assert main([
            "generate", out, "--pipeline", "enterprise", "--tenants", "2",
        ]) == 2
        assert "--enterprise-tenants" in capsys.readouterr().err
        assert main([
            "generate", out, "--tenants", "2", "--enterprise-tenants", "2",
        ]) == 2
        assert "lead tenant" in capsys.readouterr().err
        assert main([
            "generate", out, "--pipeline", "enterprise", "--netflow",
        ]) == 2
        assert "netflow" in capsys.readouterr().err
        assert main([
            "generate", out, "--enterprise-tenants", "1",
        ]) == 2
        assert "--tenants" in capsys.readouterr().err

    def test_generate_mixed_fleet_manifest(self, tmp_path):
        import json

        out = tmp_path / "fleet"
        assert main([
            "generate", str(out), "--tenants", "3",
            "--enterprise-tenants", "1", "--hosts", "40",
            "--days", "3", "--seed", "11",
        ]) == 0
        manifest = json.loads((out / "manifest.json").read_text())
        pipelines = [t.get("pipeline", "dns") for t in manifest["tenants"]]
        assert pipelines == ["dns", "dns", "enterprise"]
        assert manifest["whois"] == "intel/whois.json"
        assert (out / "t2" / "model.json").exists()
