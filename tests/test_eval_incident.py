"""Tests for SOC incident-report assembly."""

import pytest

from repro.eval import LanlChallengeSolver, build_incident
from repro.intel import VirusTotalOracle


@pytest.fixture(scope="module")
def solved_day(lanl_dataset):
    solver = LanlChallengeSolver(lanl_dataset)
    context = solver.day_context(2)
    cc, verdicts = solver.detect_cc_domains(context)
    truth = lanl_dataset.campaign_for_date(2)
    result = solver.run_belief_propagation(
        context, set(truth.hint_hosts), set(), cc
    )
    return context, verdicts, result, truth


class TestBuildIncident:
    def test_evidence_for_every_detection(self, solved_day):
        context, verdicts, result, _truth = solved_day
        report = build_incident(result, context.traffic, verdicts=verdicts)
        assert report.domains == result.detected_domains

    def test_seed_exclusion_default(self, solved_day, lanl_dataset):
        context, verdicts, result, truth = solved_day
        # Re-run with seed domains to check exclusion.
        solver = LanlChallengeSolver(lanl_dataset)
        ctx2 = solver.day_context(2)
        cc, v2 = solver.detect_cc_domains(ctx2)
        seeded = solver.run_belief_propagation(
            ctx2, set(truth.hint_hosts), set(truth.cc_domains), cc
        )
        report = build_incident(seeded, ctx2.traffic, verdicts=v2)
        assert not (set(report.domains) & set(truth.cc_domains))
        with_seeds = build_incident(
            seeded, ctx2.traffic, verdicts=v2, include_seeds=True
        )
        assert set(truth.cc_domains) <= set(with_seeds.domains)

    def test_beacon_period_attached_to_cc(self, solved_day):
        context, verdicts, result, truth = solved_day
        report = build_incident(result, context.traffic, verdicts=verdicts)
        cc_evidence = [
            e for e in report.evidence if e.domain in truth.cc_domains
        ]
        assert cc_evidence
        for evidence in cc_evidence:
            assert evidence.beacon_period == pytest.approx(600.0, abs=30.0)

    def test_hosts_and_connection_counts(self, solved_day):
        context, verdicts, result, _ = solved_day
        report = build_incident(result, context.traffic, verdicts=verdicts)
        for evidence in report.evidence:
            assert evidence.hosts
            assert evidence.connection_count >= len(evidence.hosts)

    def test_whois_enrichment(self, solved_day, lanl_dataset):
        context, verdicts, result, truth = solved_day
        when = (context.day + 1) * 86_400.0
        report = build_incident(
            result, context.traffic, verdicts=verdicts,
            whois=lanl_dataset.whois, when=when,
        )
        aged = [e for e in report.evidence if e.dom_age_days is not None]
        assert aged
        for evidence in aged:
            assert evidence.dom_age_days < 45  # attacker registrations young

    def test_vt_enrichment(self, solved_day):
        context, verdicts, result, truth = solved_day
        vt = VirusTotalOracle(truth.malicious_domains, coverage=1.0)
        report = build_incident(
            result, context.traffic, verdicts=verdicts, virustotal=vt
        )
        assert all(e.vt_reported for e in report.evidence
                   if e.domain in truth.malicious_domains)

    def test_render_mentions_key_facts(self, solved_day):
        context, verdicts, result, _ = solved_day
        report = build_incident(result, context.traffic, verdicts=verdicts)
        text = report.render()
        assert "incident report" in text
        assert "hosts:" in text
        for domain in report.domains:
            assert domain in text

    def test_compromised_hosts_listed(self, solved_day, lanl_dataset):
        context, verdicts, result, truth = solved_day
        report = build_incident(result, context.traffic, verdicts=verdicts)
        assert set(truth.compromised_hosts) <= set(report.compromised_hosts)
