"""Tests for significance-driven backward feature elimination."""

import numpy as np
import pytest

from repro.features import backward_eliminate, project_features


def make_collinear_data(n=200, seed=0):
    """signal drives y; twin is collinear with signal; noise is junk."""
    rng = np.random.default_rng(seed)
    signal = rng.uniform(size=n)
    twin = signal + rng.normal(scale=0.01, size=n)
    noise = rng.uniform(size=n)
    y = 2.0 * signal + rng.normal(scale=0.05, size=n)
    matrix = np.column_stack([signal, twin, noise])
    return matrix.tolist(), y.tolist()


class TestBackwardElimination:
    def test_drops_collinear_twin_and_noise(self):
        """The paper's AutoHosts/IP16 situation: the collinear twin and
        the junk feature go; the true signal stays."""
        matrix, labels = make_collinear_data()
        result = backward_eliminate(
            ("signal", "twin", "noise"), matrix, labels
        )
        assert "signal" in result.model.feature_names
        assert "noise" in result.dropped_features
        # One of the collinear pair must have been eliminated.
        assert ("twin" in result.dropped_features) != (
            "signal" in result.dropped_features
        )

    def test_steps_record_p_values(self):
        matrix, labels = make_collinear_data()
        result = backward_eliminate(("signal", "twin", "noise"), matrix, labels)
        for step in result.steps:
            assert step.p_value > 0.05
            assert step.dropped not in step.remaining

    def test_keeps_all_when_all_significant(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(size=150)
        b = rng.uniform(size=150)
        y = a + 2 * b + rng.normal(scale=0.05, size=150)
        result = backward_eliminate(
            ("a", "b"), np.column_stack([a, b]).tolist(), y.tolist()
        )
        assert result.steps == ()
        assert result.model.feature_names == ("a", "b")

    def test_min_features_floor(self):
        rng = np.random.default_rng(2)
        matrix = rng.uniform(size=(50, 3)).tolist()
        labels = rng.normal(size=50).tolist()  # pure noise labels
        result = backward_eliminate(
            ("a", "b", "c"), matrix, labels, min_features=2
        )
        assert len(result.model.feature_names) >= 2

    def test_invalid_min_features(self):
        with pytest.raises(ValueError):
            backward_eliminate(("a",), [[0.0], [1.0]], [0.0, 1.0], min_features=0)

    def test_pruned_model_scores(self):
        matrix, labels = make_collinear_data()
        result = backward_eliminate(("signal", "twin", "noise"), matrix, labels)
        kept = result.model.feature_names
        projected = project_features(("signal", "twin", "noise"), kept, matrix[0])
        assert np.isfinite(result.model.score(projected))


class TestProjectFeatures:
    def test_projection_order(self):
        vector = [1.0, 2.0, 3.0]
        assert project_features(("a", "b", "c"), ("c", "a"), vector) == [3.0, 1.0]

    def test_missing_feature_raises(self):
        with pytest.raises(KeyError):
            project_features(("a",), ("z",), [1.0])

    def test_identity_projection(self):
        vector = [1.0, 2.0]
        assert project_features(("a", "b"), ("a", "b"), vector) == vector


class TestOnPipelineModels:
    def test_paper_pruning_on_cc_model(self, enterprise_evaluation):
        """Re-run selection on the pipeline's actual training rows --
        collinearity between no_hosts and auto_hosts means at most one
        survives (the paper dropped AutoHosts)."""
        import random

        from repro.features import CC_FEATURE_NAMES

        # Rebuild labeled rows via the same features the detector used.
        rows, labels = [], []
        vt = enterprise_evaluation.virustotal
        detector = enterprise_evaluation.detector
        for op_day in enterprise_evaluation.days:
            for domain, hosts in op_day.auto_hosts.items():
                features = detector.extractor.cc_features(
                    domain, op_day.traffic, hosts, op_day.when
                )
                rows.append(features.as_vector())
                labels.append(1.0 if vt.is_reported(domain) else 0.0)
        if len(rows) < len(CC_FEATURE_NAMES) + 4:
            import pytest as _pytest

            _pytest.skip("not enough automated rows in this world")
        result = backward_eliminate(
            CC_FEATURE_NAMES, rows, labels, ridge=0.01
        )
        kept = set(result.model.feature_names)
        assert not {"no_hosts", "auto_hosts"} <= kept or not result.steps
