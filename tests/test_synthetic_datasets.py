"""Tests for the LANL and enterprise dataset generators."""

import pytest

from repro.logs import parse_dns_log, format_dns_line
from repro.logs.domains import same_subnet
from repro.synthetic import CASE_DATES, TRAINING_DATES, generate_lanl_dataset
from repro.synthetic.lanl import LanlConfig

from repro.testing import SMALL_LANL


class TestLanlLayout:
    def test_twenty_campaigns(self, lanl_dataset):
        assert len(lanl_dataset.campaigns) == 20

    def test_table1_case_dates(self, lanl_dataset):
        for case, dates in CASE_DATES.items():
            campaigns = [c for c in lanl_dataset.campaigns if c.case == case]
            assert sorted(c.march_date for c in campaigns) == sorted(dates)

    def test_train_test_split_is_ten_ten(self, lanl_dataset):
        training = [c for c in lanl_dataset.campaigns if c.is_training]
        assert len(training) == 10
        assert len(TRAINING_DATES) == 10

    def test_hint_structure_per_case(self, lanl_dataset):
        for truth in lanl_dataset.campaigns:
            if truth.case == 1:
                assert len(truth.hint_hosts) == 1
            elif truth.case == 2:
                assert 3 <= len(truth.hint_hosts) <= 4
            elif truth.case == 3:
                assert len(truth.hint_hosts) == 1
                assert len(truth.compromised_hosts) > 1
            else:
                assert truth.hint_hosts == ()

    def test_hints_subset_of_compromised(self, lanl_dataset):
        for truth in lanl_dataset.campaigns:
            assert set(truth.hint_hosts) <= set(truth.compromised_hosts)

    def test_cc_domains_subset_of_malicious(self, lanl_dataset):
        for truth in lanl_dataset.campaigns:
            assert set(truth.cc_domains) <= set(truth.malicious_domains)


class TestLanlRecords:
    def test_records_sorted(self, lanl_dataset):
        records = lanl_dataset.day_records(2)
        times = [r.timestamp for r in records]
        assert times == sorted(times)

    def test_contains_non_a_records(self, lanl_dataset):
        records = lanl_dataset.day_records(2)
        assert any(not r.is_a_record for r in records)

    def test_contains_internal_queries(self, lanl_dataset):
        records = lanl_dataset.day_records(2)
        assert any(r.domain.endswith(".int.c0") for r in records)

    def test_contains_server_queries(self, lanl_dataset):
        records = lanl_dataset.day_records(2)
        server_ips = lanl_dataset.server_ips
        assert any(r.source_ip in server_ips for r in records)

    def test_campaign_traffic_present(self, lanl_dataset):
        truth = lanl_dataset.campaign_for_date(2)
        records = lanl_dataset.day_records(2)
        seen = {r.domain for r in records}
        assert set(truth.malicious_domains) <= seen

    def test_malicious_domains_absent_from_bootstrap(self, lanl_dataset):
        for truth in lanl_dataset.campaigns:
            for domain in truth.malicious_domains:
                assert domain not in lanl_dataset.bootstrap_domains

    def test_campaign_infrastructure_colocated(self, lanl_dataset):
        records = lanl_dataset.day_records(2)
        truth = lanl_dataset.campaign_for_date(2)
        ips = {}
        for record in records:
            if record.domain in truth.malicious_domains and record.resolved_ip:
                ips[record.domain] = record.resolved_ip
        values = list(ips.values())
        assert len(values) >= 2
        assert any(
            same_subnet(values[0], other, 16) for other in values[1:]
        )

    def test_round_trip_through_text_format(self, lanl_dataset):
        records = lanl_dataset.day_records(3)[:100]
        lines = [format_dns_line(r) for r in records]
        parsed = list(parse_dns_log(lines))
        assert len(parsed) == len(records)
        for before, after in zip(records, parsed):
            # The text format keeps millisecond precision.
            assert after.timestamp == pytest.approx(before.timestamp, abs=1e-3)
            assert (after.source_ip, after.domain, after.record_type,
                    after.resolved_ip) == (
                before.source_ip, before.domain, before.record_type,
                before.resolved_ip,
            )

    def test_deterministic_regeneration(self):
        a = generate_lanl_dataset(SMALL_LANL)
        b = generate_lanl_dataset(SMALL_LANL)
        assert [c.malicious_domains for c in a.campaigns] == [
            c.malicious_domains for c in b.campaigns
        ]
        assert a.day_records(5) == b.day_records(5)

    def test_different_seeds_differ(self):
        other = LanlConfig(**{**SMALL_LANL.__dict__, "seed": 99})
        a = generate_lanl_dataset(SMALL_LANL)
        b = generate_lanl_dataset(other)
        assert a.campaigns[0].malicious_domains != b.campaigns[0].malicious_domains


class TestEnterpriseDataset:
    def test_raw_records_carry_timezones(self, enterprise_dataset):
        records = enterprise_dataset.day_proxy_records(0)
        offsets = {r.tz_offset_hours for r in records}
        assert len(offsets) > 1

    def test_connections_are_utc_and_folded(self, enterprise_dataset):
        conns = enterprise_dataset.day_connections(0)
        day_span = (0 * 86_400.0, 2 * 86_400.0)
        for conn in conns[:200]:
            assert day_span[0] <= conn.timestamp < day_span[1]
            assert conn.domain.count(".") <= 2

    def test_hostnames_resolved_from_leases(self, enterprise_dataset):
        conns = enterprise_dataset.day_connections(0)
        hostnames = {c.host for c in conns}
        model_names = {h.name for h in enterprise_dataset.model.hosts}
        assert hostnames <= model_names

    def test_bare_ip_destinations_dropped(self, enterprise_dataset):
        from repro.logs.domains import is_ip_address

        conns = enterprise_dataset.day_connections(0)
        assert not any(is_ip_address(c.domain) for c in conns)

    def test_leases_cover_every_host(self, enterprise_dataset):
        leases = enterprise_dataset.day_leases(0)
        assert len(leases) == len(enterprise_dataset.model.hosts)

    def test_lease_ips_change_across_days(self, enterprise_dataset):
        day0 = {l.hostname: l.ip for l in enterprise_dataset.day_leases(0)}
        day1 = {l.hostname: l.ip for l in enterprise_dataset.day_leases(1)}
        changed = sum(1 for h in day0 if day0[h] != day1.get(h))
        assert changed > 0

    def test_ground_truth_nonempty(self, enterprise_dataset):
        assert enterprise_dataset.malicious_domains
        assert enterprise_dataset.campaigns

    def test_quiet_days_are_attack_free(self, enterprise_dataset):
        for day in range(enterprise_dataset.config.quiet_days):
            assert enterprise_dataset.campaigns_active_on(day) == []

    def test_ioc_list_subset_of_truth(self, enterprise_dataset):
        ioc = enterprise_dataset.build_ioc_list()
        assert set(ioc.seeds()) <= enterprise_dataset.malicious_domains

    def test_virustotal_partial_coverage(self, enterprise_dataset):
        vt = enterprise_dataset.build_virustotal()
        malicious = enterprise_dataset.malicious_domains
        reported = {d for d in malicious if vt.is_reported(d)}
        assert reported                    # knows something
        assert reported != malicious       # but not everything

    def test_dga_campaign_present(self, enterprise_dataset):
        dga = [c for c in enterprise_dataset.campaigns if c.dga_domains]
        assert dga
        assert any(len(c.dga_domains) == 10 for c in dga)
