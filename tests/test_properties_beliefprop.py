"""Property-based tests for Algorithm 1 on random bipartite worlds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BeliefPropagationConfig
from repro.core import belief_propagation

hosts_strategy = st.sets(
    st.sampled_from([f"h{i}" for i in range(8)]), min_size=1, max_size=8
)
domains_strategy = st.sets(
    st.sampled_from([f"d{i}.ru" for i in range(10)]), min_size=1, max_size=10
)


@st.composite
def worlds(draw):
    """A random bipartite world plus seeds, scores and C&C labels."""
    hosts = sorted(draw(hosts_strategy))
    domains = sorted(draw(domains_strategy))
    dom_host = {
        domain: set(draw(st.sets(st.sampled_from(hosts), max_size=len(hosts))))
        for domain in domains
    }
    host_rdom: dict[str, set[str]] = {host: set() for host in hosts}
    for domain, members in dom_host.items():
        for host in members:
            host_rdom[host].add(domain)
    seed_hosts = set(draw(st.sets(st.sampled_from(hosts), min_size=1, max_size=3)))
    cc = set(draw(st.sets(st.sampled_from(domains), max_size=3)))
    scores = {
        domain: draw(st.floats(0, 1, allow_nan=False)) for domain in domains
    }
    max_iterations = draw(st.integers(1, 8))
    threshold = draw(st.floats(0.1, 0.9))
    return (hosts, domains, dom_host, host_rdom, seed_hosts, cc, scores,
            max_iterations, threshold)


def run(world):
    (_, _, dom_host, host_rdom, seed_hosts, cc, scores,
     max_iterations, threshold) = world
    config = BeliefPropagationConfig(
        similarity_threshold=threshold, max_iterations=max_iterations
    )
    result = belief_propagation(
        seed_hosts,
        set(),
        dom_host=dom_host,
        host_rdom=host_rdom,
        detect_cc=lambda dom: dom in cc,
        similarity_score=lambda dom, malicious: scores[dom],
        config=config,
    )
    return result, config


class TestBeliefPropagationProperties:
    @settings(max_examples=60)
    @given(worlds())
    def test_hosts_superset_of_seeds(self, world):
        result, _ = run(world)
        assert world[4] <= result.hosts

    @settings(max_examples=60)
    @given(worlds())
    def test_labeled_domains_are_reachable_rare_domains(self, world):
        """Every labeled domain is visited by some compromised host."""
        result, _ = run(world)
        dom_host = world[2]
        for domain in result.domains:
            assert dom_host.get(domain, set()) & result.hosts or not dom_host.get(domain)

    @settings(max_examples=60)
    @given(worlds())
    def test_iteration_cap_respected(self, world):
        result, config = run(world)
        assert result.iterations <= config.max_iterations

    @settings(max_examples=60)
    @given(worlds())
    def test_similarity_labels_clear_threshold(self, world):
        result, config = run(world)
        scores = world[6]
        for detection in result.detections:
            if detection.reason == "similarity":
                assert scores[detection.domain] >= config.similarity_threshold

    @settings(max_examples=60)
    @given(worlds())
    def test_cc_domains_labeled_cc(self, world):
        """Any labeled domain that is in the C&C set must carry the cc
        reason (phase 1 runs before similarity)."""
        result, _ = run(world)
        cc = world[5]
        for detection in result.detections:
            if detection.domain in cc and detection.reason != "seed":
                assert detection.reason == "cc"

    @settings(max_examples=60)
    @given(worlds())
    def test_deterministic(self, world):
        first, _ = run(world)
        second, _ = run(world)
        assert [d.domain for d in first.detections] == [
            d.domain for d in second.detections
        ]
        assert first.hosts == second.hosts

    @settings(max_examples=60)
    @given(worlds())
    def test_graph_consistent_with_sets(self, world):
        result, _ = run(world)
        assert set(result.graph.hosts) == result.hosts
        assert set(result.graph.domains) == result.domains
        for host, domain in result.graph.edges:
            assert host in result.hosts
            assert domain in result.domains

    @settings(max_examples=60)
    @given(worlds())
    def test_no_duplicate_detections(self, world):
        result, _ = run(world)
        names = [d.domain for d in result.detections]
        assert len(names) == len(set(names))

    @settings(max_examples=40)
    @given(worlds(), st.floats(0.1, 0.9))
    def test_higher_threshold_detects_subset_weakly(self, world, bump):
        """Raising Ts cannot increase the number of similarity labels
        on the same world (with identical iteration caps)."""
        (hosts, domains, dom_host, host_rdom, seed_hosts, cc, scores,
         max_iterations, threshold) = world
        high = min(0.99, threshold + bump)
        low_world = (hosts, domains, dom_host, host_rdom, seed_hosts, cc,
                     scores, max_iterations, threshold)
        high_world = (hosts, domains, dom_host, host_rdom, seed_hosts, cc,
                      scores, max_iterations, high)
        low_result, _ = run(low_world)
        high_result, _ = run(high_world)
        low_sim = sum(1 for d in low_result.detections if d.reason == "similarity")
        high_sim = sum(1 for d in high_result.detections if d.reason == "similarity")
        assert high_sim <= low_sim
