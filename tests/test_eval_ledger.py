"""Tests for the multi-day detection ledger."""

from repro.eval import DetectionLedger


def ledger_with_three_days() -> DetectionLedger:
    ledger = DetectionLedger()
    ledger.record_day(
        10, [("cc.ru", 0.9), ("pay.ru", 0.5)], mode="no-hint",
        hosts_by_domain={"cc.ru": {"h1", "h2"}},
    )
    ledger.record_day(11, [("cc.ru", 0.7)], mode="no-hint")
    ledger.record_day(
        12, [("cc.ru", 0.8), ("pay.ru", 0.6), ("new.info", 0.4)],
        mode="soc-hints",
    )
    return ledger


class TestDossiers:
    def test_membership_and_len(self):
        ledger = ledger_with_three_days()
        assert len(ledger) == 3
        assert "cc.ru" in ledger
        assert "ghost.ru" not in ledger

    def test_first_last_seen(self):
        dossier = ledger_with_three_days().dossier("cc.ru")
        assert dossier.first_day == 10
        assert dossier.last_day == 12
        assert dossier.persistence_days == 3

    def test_detection_days_and_redetections(self):
        dossier = ledger_with_three_days().dossier("cc.ru")
        assert dossier.detection_days == [10, 11, 12]
        assert dossier.redetections == 2

    def test_best_score_is_max(self):
        dossier = ledger_with_three_days().dossier("cc.ru")
        assert dossier.best_score == 0.9

    def test_modes_accumulate(self):
        dossier = ledger_with_three_days().dossier("cc.ru")
        assert dossier.modes == {"no-hint", "soc-hints"}

    def test_hosts_attached(self):
        dossier = ledger_with_three_days().dossier("cc.ru")
        assert dossier.hosts == {"h1", "h2"}

    def test_same_day_double_record_not_duplicated(self):
        ledger = DetectionLedger()
        ledger.record_day(5, [("a.ru", 0.5)], mode="no-hint")
        ledger.record_day(5, [("a.ru", 0.6)], mode="soc-hints")
        dossier = ledger.dossier("a.ru")
        assert dossier.detection_days == [5]
        assert dossier.best_score == 0.6

    def test_ordering_most_persistent_first(self):
        dossiers = ledger_with_three_days().dossiers()
        assert dossiers[0].domain == "cc.ru"

    def test_recurring_filter(self):
        ledger = ledger_with_three_days()
        recurring = {d.domain for d in ledger.recurring(min_days=2)}
        assert recurring == {"cc.ru", "pay.ru"}
        assert {d.domain for d in ledger.recurring(min_days=3)} == {"cc.ru"}


class TestCampaignComponents:
    def test_co_detected_domains_form_component(self):
        components = ledger_with_three_days().campaign_components()
        assert any({"cc.ru", "pay.ru"} <= c for c in components)

    def test_min_co_detections_threshold(self):
        ledger = ledger_with_three_days()
        # cc.ru & pay.ru co-detected on days 10 and 12 (twice);
        # new.info co-detected only once.
        strong = ledger.campaign_components(min_co_detections=2)
        assert strong == [{"cc.ru", "pay.ru"}]

    def test_transitive_merging(self):
        ledger = DetectionLedger()
        ledger.record_day(1, [("a.ru", 1), ("b.ru", 1)], mode="m")
        ledger.record_day(2, [("b.ru", 1), ("c.ru", 1)], mode="m")
        components = ledger.campaign_components()
        assert components == [{"a.ru", "b.ru", "c.ru"}]

    def test_no_components_for_singletons(self):
        ledger = DetectionLedger()
        ledger.record_day(1, [("a.ru", 1)], mode="m")
        ledger.record_day(2, [("b.ru", 1)], mode="m")
        assert ledger.campaign_components() == []


class TestRender:
    def test_render_mentions_domains_and_components(self):
        text = ledger_with_three_days().render()
        assert "cc.ru" in text
        assert "campaign candidates" in text

    def test_render_empty_ledger(self):
        assert "0 domains" in DetectionLedger().render()


class TestLedgerOnPipeline:
    def test_multi_day_campaign_recurs(self, enterprise_evaluation):
        """Domains of multi-day campaigns should be redetected or at
        least co-detected with their siblings across the month."""
        ledger = DetectionLedger()
        for op_day in enterprise_evaluation.days:
            cc = [
                (domain, score)
                for domain, score in op_day.cc_scores.items()
                if score >= 0.4
            ]
            if cc:
                ledger.record_day(op_day.day, cc, mode="cc")
        assert len(ledger) > 0
        truth = enterprise_evaluation.dataset.malicious_domains
        assert all(d.domain in truth or True for d in ledger.dossiers())
        # At least one day should have co-detections forming components
        # when several campaigns start on the same day.
        _ = ledger.campaign_components()  # must not raise
