"""Unit tests for post-detection cluster triage (Sections VI-C/D)."""

from repro.eval import (
    cluster_by_name,
    cluster_by_subnet,
    cluster_by_url_pattern,
    name_entropy,
    name_signature,
    triage_report,
)

SHORT_DGA = ["mgwg.info", "azxc.info", "qwtyb.info", "lkops.info"]
HEX_DGA = [
    "f0371288e0a20a541328.info",
    "27843591a98b75c9bb63.info",
    "5881b8351add4980e6e8.info",
]
BENIGN = ["parkside-media.com", "bluecargo.net"]


class TestNameSignature:
    def test_short_dga_signature(self):
        assert name_signature("mgwg.info") == ".info len4-5 alpha"

    def test_hex_dga_signature(self):
        assert name_signature(HEX_DGA[0]) == ".info len17+ hex"

    def test_benign_differs_from_dga(self):
        assert name_signature(BENIGN[0]) != name_signature(SHORT_DGA[0])

    def test_entropy_of_repeated_char_is_zero(self):
        assert name_entropy("aaaa") == 0.0

    def test_entropy_increases_with_diversity(self):
        assert name_entropy("abcdefgh") > name_entropy("aabbaabb")

    def test_entropy_empty(self):
        assert name_entropy("") == 0.0


class TestClusterByName:
    def test_separates_the_two_paper_dga_families(self):
        clusters = cluster_by_name(SHORT_DGA + HEX_DGA + BENIGN)
        keys = {c.key: set(c.domains) for c in clusters}
        assert set(SHORT_DGA) in keys.values()
        assert set(HEX_DGA) in keys.values()

    def test_benign_names_do_not_join_dga_clusters(self):
        clusters = cluster_by_name(SHORT_DGA + BENIGN)
        for cluster in clusters:
            assert not (set(cluster.domains) & set(BENIGN)) or not (
                set(cluster.domains) & set(SHORT_DGA)
            )

    def test_min_size_filters_singletons(self):
        clusters = cluster_by_name(["lonely.xyz", *SHORT_DGA], min_size=2)
        for cluster in clusters:
            assert cluster.size >= 2

    def test_sorted_largest_first(self):
        clusters = cluster_by_name(SHORT_DGA + HEX_DGA)
        sizes = [c.size for c in clusters]
        assert sizes == sorted(sizes, reverse=True)

    def test_duplicates_collapse(self):
        clusters = cluster_by_name(SHORT_DGA + SHORT_DGA)
        assert clusters[0].size == len(SHORT_DGA)


class TestClusterByUrl:
    def test_shared_path_clusters(self):
        """The paper's /tan2.html group: 9 domains, same path."""
        paths = {d: ["/tan2.html"] for d in SHORT_DGA}
        paths["other.com"] = ["/index.html"]
        clusters = cluster_by_url_pattern(paths)
        assert len(clusters) == 1
        assert clusters[0].key == "path:/tan2.html"
        assert set(clusters[0].domains) == set(SHORT_DGA)

    def test_domain_in_multiple_path_clusters(self):
        paths = {
            "a.ru": ["/logo.gif", "/x"],
            "b.ru": ["/logo.gif"],
            "c.ru": ["/x"],
        }
        clusters = cluster_by_url_pattern(paths)
        keys = {c.key for c in clusters}
        assert keys == {"path:/logo.gif", "path:/x"}

    def test_empty_input(self):
        assert cluster_by_url_pattern({}) == []


class TestClusterBySubnet:
    def test_same_24_clusters(self):
        ips = {"a.ru": ["5.5.5.1"], "b.ru": ["5.5.5.200"], "c.com": ["9.9.9.9"]}
        clusters = cluster_by_subnet(ips)
        assert len(clusters) == 1
        assert set(clusters[0].domains) == {"a.ru", "b.ru"}

    def test_16_prefix_merges_more(self):
        ips = {"a.ru": ["5.5.5.1"], "b.ru": ["5.5.77.1"]}
        assert cluster_by_subnet(ips, prefix=24) == []
        merged = cluster_by_subnet(ips, prefix=16)
        assert len(merged) == 1

    def test_multi_ip_domain(self):
        ips = {"a.ru": ["5.5.5.1", "9.9.9.1"], "b.ru": ["9.9.9.7"]}
        clusters = cluster_by_subnet(ips)
        assert any(set(c.domains) == {"a.ru", "b.ru"} for c in clusters)


class TestTriageReport:
    def test_report_includes_all_views(self):
        report = triage_report(
            SHORT_DGA + HEX_DGA,
            paths_by_domain={d: ["/tan2.html"] for d in SHORT_DGA},
            ips_by_domain={d: ["5.5.5.1"] for d in HEX_DGA},
        )
        assert "naming family" in report
        assert "URL path" in report
        assert "/24 co-hosting" in report
        assert "tan2.html" in report

    def test_report_without_optional_views(self):
        report = triage_report(SHORT_DGA)
        assert "naming family" in report
        assert "URL path" not in report
