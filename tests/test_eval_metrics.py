"""Unit tests for detection metrics."""

import pytest

from repro.eval import (
    DetectionCounts,
    new_discovery_rate,
    score_detections,
    validate_detections,
)
from repro.eval.metrics import ZERO_COUNTS


class TestDetectionCounts:
    def test_tdr_fdr_complementary(self):
        counts = DetectionCounts(3, 1, 0)
        assert counts.tdr == pytest.approx(0.75)
        assert counts.fdr == pytest.approx(0.25)
        assert counts.tdr + counts.fdr == pytest.approx(1.0)

    def test_fnr(self):
        counts = DetectionCounts(3, 0, 1)
        assert counts.fnr == pytest.approx(0.25)

    def test_empty_detections(self):
        assert ZERO_COUNTS.tdr == 0.0
        assert ZERO_COUNTS.fdr == 0.0
        assert ZERO_COUNTS.fnr == 0.0

    def test_addition(self):
        total = DetectionCounts(1, 2, 3) + DetectionCounts(4, 5, 6)
        assert (total.true_positives, total.false_positives,
                total.false_negatives) == (5, 7, 9)

    def test_all_missed(self):
        counts = DetectionCounts(0, 0, 5)
        assert counts.fnr == 1.0


class TestScoreDetections:
    def test_basic(self):
        counts = score_detections(["a", "b", "x"], {"a", "b", "c"})
        assert counts.true_positives == 2
        assert counts.false_positives == 1
        assert counts.false_negatives == 1

    def test_duplicates_in_detections_collapse(self):
        counts = score_detections(["a", "a"], {"a"})
        assert counts.true_positives == 1

    def test_empty_truth(self):
        counts = score_detections(["a"], set())
        assert counts.false_positives == 1
        assert counts.fnr == 0.0


class TestNdr:
    def test_new_discovery_rate(self):
        rate = new_discovery_rate(
            {"a", "b", "c", "d"}, vt_reported={"a"}, soc_known={"b"}
        )
        assert rate == pytest.approx(0.5)

    def test_empty(self):
        assert new_discovery_rate(set(), set(), set()) == 0.0


class TestValidateDetections:
    def test_categories(self):
        breakdown = validate_detections(
            detected=["vt.ru", "soc.ru", "new.ru", "oops.com"],
            truth={"vt.ru", "soc.ru", "new.ru"},
            vt_reported={"vt.ru"},
            soc_known={"soc.ru"},
        )
        assert breakdown.known_malicious == 2
        assert breakdown.new_malicious == 1
        assert breakdown.legitimate == 1
        assert breakdown.detected == 4
        assert breakdown.tdr == pytest.approx(0.75)
        assert breakdown.ndr == pytest.approx(0.25)

    def test_empty_detection_rates_zero(self):
        breakdown = validate_detections([], {"a"}, set())
        assert breakdown.tdr == 0.0
        assert breakdown.ndr == 0.0
