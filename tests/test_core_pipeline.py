"""Integration tests for the EnterpriseDetector pipeline."""

import pytest

from repro.core import EnterpriseDetector


@pytest.fixture(scope="module")
def trained(enterprise_dataset):
    detector = EnterpriseDetector(whois=enterprise_dataset.whois)
    detector.train(
        enterprise_dataset.day_batches(0, enterprise_dataset.config.bootstrap_days),
        enterprise_dataset.build_virustotal(),
    )
    return detector


class TestTraining:
    def test_histories_populated(self, trained):
        assert trained.report.history_size > 50
        assert trained.report.ua_count > 5

    def test_models_exist(self, trained):
        assert trained.cc_scorer is not None
        assert trained.similarity_scorer is not None

    def test_profiled_all_days(self, trained, enterprise_dataset):
        assert trained.report.profiled_days == enterprise_dataset.config.bootstrap_days


class TestOperation:
    def test_untrained_detector_refuses_operation(self, enterprise_dataset):
        detector = EnterpriseDetector(whois=enterprise_dataset.whois)
        day, conns = enterprise_dataset.day_batches(0, 1)[0]
        with pytest.raises(RuntimeError):
            detector.process_day(day, conns)

    def test_day_result_shape(self, trained, enterprise_dataset):
        day = enterprise_dataset.config.bootstrap_days
        conns = enterprise_dataset.day_connections(day)
        result = trained.process_day(day, conns, update_profiles=False)
        assert result.day == day
        assert result.rare_domains
        assert isinstance(result.all_detected_domains(), set)

    def test_cc_detections_on_attack_day(self, trained, enterprise_dataset):
        """On a day with active beaconing campaigns, at least one true
        C&C domain must clear the threshold."""
        truth_cc = {d for c in enterprise_dataset.campaigns for d in c.cc_domains}
        found = set()
        first = enterprise_dataset.config.bootstrap_days
        for day in range(first, enterprise_dataset.config.total_days):
            conns = enterprise_dataset.day_connections(day)
            result = trained.process_day(day, conns, update_profiles=True)
            found |= result.cc_domain_names
        assert found & truth_cc

    def test_soc_seeds_trigger_hints_mode(self, trained, enterprise_dataset):
        ioc = enterprise_dataset.build_ioc_list()
        ran_hints = False
        first = enterprise_dataset.config.bootstrap_days
        detector = EnterpriseDetector(whois=enterprise_dataset.whois)
        detector.train(
            enterprise_dataset.day_batches(0, first),
            enterprise_dataset.build_virustotal(),
        )
        for day in range(first, enterprise_dataset.config.total_days):
            conns = enterprise_dataset.day_connections(day)
            result = detector.process_day(
                day, conns, soc_seed_domains=ioc.seeds()
            )
            if result.soc_hints is not None:
                ran_hints = True
                assert result.soc_hints.domains  # seeds at minimum
        assert ran_hints

    def test_cc_domains_sorted_by_score(self, trained, enterprise_dataset):
        first = enterprise_dataset.config.bootstrap_days
        for day in range(first, enterprise_dataset.config.total_days):
            conns = enterprise_dataset.day_connections(day)
            result = trained.process_day(day, conns, update_profiles=False)
            scores = [s.score for s in result.cc_domains]
            assert scores == sorted(scores, reverse=True)
            if result.cc_domains:
                break
