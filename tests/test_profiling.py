"""Unit tests for histories and rare-destination extraction."""

from repro.logs import Connection
from repro.profiling import (
    DailyTraffic,
    DestinationHistory,
    UserAgentHistory,
    extract_rare_domains,
    merge_daily_traffic,
    rare_domains_by_host,
)


def conn(host, domain, ts=0.0, ua=None, referer=None, ip=""):
    return Connection(
        timestamp=ts, host=host, domain=domain,
        resolved_ip=ip, user_agent=ua, referer=referer,
    )


class TestDestinationHistory:
    def test_new_until_committed(self):
        history = DestinationHistory()
        history.stage("a.com", day=5)
        assert history.is_new("a.com")  # same-day: still new
        history.commit_day(5)
        assert not history.is_new("a.com")

    def test_commit_returns_added_count(self):
        history = DestinationHistory()
        history.stage("a.com", 1)
        history.stage("b.com", 1)
        history.stage("a.com", 1)
        assert history.commit_day(1) == 2

    def test_bootstrap(self):
        history = DestinationHistory()
        history.bootstrap(["a.com", "b.com"])
        assert not history.is_new("a.com")
        assert history.is_new("c.com")
        assert len(history) == 2

    def test_first_seen_day_preserved(self):
        history = DestinationHistory()
        history.stage("a.com", 3)
        history.commit_day(3)
        history.stage("a.com", 9)
        history.commit_day(9)
        assert history.first_seen("a.com") == 3

    def test_first_seen_unknown_is_none(self):
        assert DestinationHistory().first_seen("x.com") is None

    def test_earliest_staged_day_wins(self):
        history = DestinationHistory()
        history.stage("a.com", 7)
        history.stage("a.com", 4)
        history.commit_day(7)
        assert history.first_seen("a.com") == 4

    def test_contains(self):
        history = DestinationHistory()
        history.bootstrap(["a.com"])
        assert "a.com" in history
        assert "b.com" not in history


class TestUserAgentHistory:
    def test_missing_ua_is_rare(self):
        history = UserAgentHistory()
        assert history.is_rare(None)
        assert history.is_rare("")

    def test_popularity_threshold(self):
        history = UserAgentHistory(rare_max_hosts=3)
        history.bootstrap([("UA", f"host{i}") for i in range(3)])
        assert not history.is_rare("UA")
        history2 = UserAgentHistory(rare_max_hosts=3)
        history2.bootstrap([("UA", f"host{i}") for i in range(2)])
        assert history2.is_rare("UA")

    def test_staged_not_counted_until_commit(self):
        history = UserAgentHistory(rare_max_hosts=1)
        history.stage("UA", "h1")
        assert history.popularity("UA") == 0
        history.commit_day()
        assert history.popularity("UA") == 1

    def test_distinct_hosts_counted_once(self):
        history = UserAgentHistory()
        history.bootstrap([("UA", "h1"), ("UA", "h1"), ("UA", "h2")])
        assert history.popularity("UA") == 2

    def test_empty_ua_not_stored(self):
        history = UserAgentHistory()
        history.stage("", "h1")
        history.commit_day()
        assert len(history) == 0

    def test_invalid_threshold(self):
        import pytest

        with pytest.raises(ValueError):
            UserAgentHistory(rare_max_hosts=0)


class TestDailyTraffic:
    def _traffic(self):
        traffic = DailyTraffic(day=0)
        traffic.ingest(
            [
                conn("h1", "a.com", 10.0, ua="UA1", referer="", ip="1.2.3.4"),
                conn("h1", "a.com", 20.0, ua="UA1", referer="http://x/"),
                conn("h2", "a.com", 15.0, ua="UA2", referer="http://x/"),
                conn("h1", "b.com", 12.0, ua="UA1", referer=""),
            ],
            ua_is_rare=lambda ua: ua == "UA2",
        )
        traffic.finalize()
        return traffic

    def test_popularity(self):
        traffic = self._traffic()
        assert traffic.domain_popularity("a.com") == 2
        assert traffic.domain_popularity("b.com") == 1
        assert traffic.domain_popularity("none.com") == 0

    def test_timestamps_sorted(self):
        traffic = DailyTraffic(0)
        traffic.ingest([conn("h", "d.com", 5.0), conn("h", "d.com", 1.0)])
        assert traffic.connection_times("h", "d.com") == [1.0, 5.0]

    def test_first_contact(self):
        traffic = self._traffic()
        assert traffic.first_contact("h1", "a.com") == 10.0
        assert traffic.first_contact("h9", "a.com") is None

    def test_no_referer_hosts(self):
        traffic = self._traffic()
        assert traffic.no_referer_hosts["a.com"] == {"h1"}
        assert traffic.no_referer_hosts["b.com"] == {"h1"}

    def test_rare_ua_hosts(self):
        traffic = self._traffic()
        assert traffic.rare_ua_hosts["a.com"] == {"h2"}

    def test_resolved_ips_collected(self):
        traffic = self._traffic()
        assert traffic.resolved_ips["a.com"] == {"1.2.3.4"}

    def test_domains_by_host(self):
        traffic = self._traffic()
        assert traffic.domains_by_host["h1"] == {"a.com", "b.com"}


class TestMergeDailyTraffic:
    """Host-sharded aggregation must be invisible after merging."""

    CONNS = [
        conn("h1", "a.com", 10.0, ua="UA1", referer="", ip="1.2.3.4"),
        conn("h1", "a.com", 5.0, ua="UA1", referer="http://x/"),
        conn("h2", "a.com", 15.0, ua="UA2", referer="http://x/"),
        conn("h1", "b.com", 12.0, ua="UA1", referer=""),
        conn("h3", "c.com", 7.0, ua="UA2", referer="", ip="5.6.7.8"),
    ]

    def _merged(self, n_shards):
        from repro.streaming import shard_of

        rare_ua = lambda ua: ua == "UA2"  # noqa: E731
        shards = [DailyTraffic(3) for _ in range(n_shards)]
        for c in self.CONNS:
            shards[shard_of(c.host, n_shards)].ingest([c], ua_is_rare=rare_ua)
        return merge_daily_traffic(shards, day=3)

    def _serial(self):
        traffic = DailyTraffic(3)
        traffic.ingest(self.CONNS, ua_is_rare=lambda ua: ua == "UA2")
        return traffic

    def test_merge_equals_serial_ingest(self):
        serial = self._serial()
        for n_shards in (1, 2, 4):
            merged = self._merged(n_shards)
            assert merged.day == serial.day
            assert merged.hosts_by_domain == serial.hosts_by_domain
            assert merged.domains_by_host == serial.domains_by_host
            assert merged.resolved_ips == serial.resolved_ips
            assert merged.no_referer_hosts == serial.no_referer_hosts
            assert merged.rare_ua_hosts == serial.rare_ua_hosts
            for pair in serial.timestamps:
                assert merged.connection_times(
                    *pair
                ) == serial.connection_times(*pair)

    def test_merged_index_builds_on_demand(self):
        merged = self._merged(2)
        assert merged._index is None
        index = merged.index()
        assert index is merged.index()


class TestRareExtraction:
    def test_new_and_unpopular(self):
        history = DestinationHistory()
        history.bootstrap(["old.com"])
        traffic = DailyTraffic(0)
        traffic.ingest(
            [conn("h1", "old.com"), conn("h1", "fresh.com"), conn("h2", "fresh.com")]
        )
        rare = extract_rare_domains(traffic, history, unpopular_max_hosts=10)
        assert rare == {"fresh.com"}

    def test_popular_new_domain_not_rare(self):
        history = DestinationHistory()
        traffic = DailyTraffic(0)
        traffic.ingest([conn(f"h{i}", "viral.com") for i in range(10)])
        rare = extract_rare_domains(traffic, history, unpopular_max_hosts=10)
        assert rare == set()

    def test_threshold_boundary(self):
        history = DestinationHistory()
        traffic = DailyTraffic(0)
        traffic.ingest([conn(f"h{i}", "d.com") for i in range(9)])
        assert extract_rare_domains(traffic, history, unpopular_max_hosts=10) == {"d.com"}

    def test_rare_domains_by_host(self):
        history = DestinationHistory()
        traffic = DailyTraffic(0)
        traffic.ingest([conn("h1", "a.com"), conn("h2", "a.com"), conn("h1", "b.com")])
        rare = extract_rare_domains(traffic, history)
        mapping = rare_domains_by_host(traffic, rare)
        assert mapping["h1"] == {"a.com", "b.com"}
        assert mapping["h2"] == {"a.com"}
