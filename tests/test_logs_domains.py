"""Unit tests for domain folding, validity and subnet utilities."""

import pytest

from repro.logs.domains import (
    fold_domain,
    is_internal_domain,
    is_ip_address,
    is_valid_domain,
    same_subnet,
    subnet_key,
)


class TestIsIpAddress:
    def test_ipv4(self):
        assert is_ip_address("192.168.1.1")

    def test_ipv6(self):
        assert is_ip_address("2001:db8::1")

    def test_domain_is_not_ip(self):
        assert not is_ip_address("example.com")

    def test_almost_ip(self):
        assert not is_ip_address("192.168.1")

    def test_empty(self):
        assert not is_ip_address("")


class TestIsValidDomain:
    def test_simple(self):
        assert is_valid_domain("example.com")

    def test_subdomain(self):
        assert is_valid_domain("a.b.example.com")

    def test_single_label_rejected(self):
        assert not is_valid_domain("localhost")

    def test_ip_rejected(self):
        assert not is_valid_domain("10.0.0.1")

    def test_empty_rejected(self):
        assert not is_valid_domain("")

    def test_bad_characters_rejected(self):
        assert not is_valid_domain("exa mple.com")

    def test_overlong_rejected(self):
        assert not is_valid_domain("a" * 300 + ".com")

    def test_trailing_dot_allowed(self):
        assert is_valid_domain("example.com.")


class TestFoldDomain:
    def test_second_level(self):
        assert fold_domain("news.nbc.com") == "nbc.com"

    def test_already_second_level(self):
        assert fold_domain("nbc.com") == "nbc.com"

    def test_third_level(self):
        assert fold_domain("a.b.c.example", level=3) == "b.c.example"

    def test_fewer_labels_than_level(self):
        assert fold_domain("x.y", level=3) == "x.y"

    def test_lowercases(self):
        assert fold_domain("WWW.Example.COM") == "example.com"

    def test_strips_trailing_dot(self):
        assert fold_domain("www.example.com.") == "example.com"

    def test_deep_subdomain(self):
        assert fold_domain("a.b.c.d.e.nbc.com") == "nbc.com"

    def test_level_must_be_positive(self):
        with pytest.raises(ValueError):
            fold_domain("example.com", level=0)

    def test_same_entity_folds_identically(self):
        assert fold_domain("cdn.nbc.com") == fold_domain("mail.NBC.com")


class TestIsInternalDomain:
    def test_exact_suffix(self):
        assert is_internal_domain("corp.example", ("corp.example",))

    def test_subdomain_of_suffix(self):
        assert is_internal_domain("printer.corp.example", ("corp.example",))

    def test_non_internal(self):
        assert not is_internal_domain("evil.com", ("corp.example",))

    def test_suffix_must_match_label_boundary(self):
        # "notcorp.example" must not match suffix "corp.example".
        assert not is_internal_domain("notcorp.example", ("corp.example",))

    def test_multiple_suffixes(self):
        suffixes = ("corp.example", "int.c0")
        assert is_internal_domain("foo.int.c0", suffixes)

    def test_empty_suffix_tuple(self):
        assert not is_internal_domain("anything.com", ())


class TestSubnets:
    def test_subnet_key_24(self):
        assert subnet_key("93.184.216.34", 24) == "93.184.216.0/24"

    def test_subnet_key_16(self):
        assert subnet_key("93.184.216.34", 16) == "93.184.0.0/16"

    def test_same_24(self):
        assert same_subnet("1.2.3.4", "1.2.3.200", 24)

    def test_different_24_same_16(self):
        assert not same_subnet("1.2.3.4", "1.2.9.4", 24)
        assert same_subnet("1.2.3.4", "1.2.9.4", 16)

    def test_empty_ip_never_matches(self):
        assert not same_subnet("", "1.2.3.4", 24)
        assert not same_subnet("1.2.3.4", "", 16)

    def test_unsupported_prefix_rejected(self):
        with pytest.raises(ValueError):
            subnet_key("1.2.3.4", 23)
