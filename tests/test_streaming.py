"""Tests for the streaming detection engine (repro.streaming).

The load-bearing properties: replaying a day's events yields the batch
pipeline's exact end-of-day detections; a mid-day checkpoint restores
to identical final state; day rollover commits histories exactly once;
and warm-start belief propagation reaches the cold-start fixed point.
"""

from pathlib import Path

import pytest

from repro.config import LANL_CONFIG
from repro.core.beliefprop import belief_propagation
from repro.logs import format_dns_line
from repro.logs.records import Connection
from repro.profiling.history import DestinationHistory
from repro.profiling.rare import DailyTraffic, RareDomainTracker, extract_rare_domains
from repro.runner import run_directory
from repro.state import load_streaming, save_streaming
from repro.streaming import (
    EventBus,
    IncrementalGraph,
    StreamingDetector,
    WarmStartConfig,
    micro_batches,
    replay_directory,
    shard_of,
    warm_start_belief_propagation,
)
from repro.streaming.window import WindowedAggregator


@pytest.fixture(scope="module")
def log_dir(lanl_dataset, tmp_path_factory) -> Path:
    """Bootstrap day (3/1) + two attack days (3/2, 3/3) on disk."""
    directory = tmp_path_factory.mktemp("streamlogs")
    for march_date in (1, 2, 3):
        path = directory / f"dns-march-{march_date:02d}.log"
        with path.open("w") as handle:
            for record in lanl_dataset.day_records(march_date):
                handle.write(format_dns_line(record) + "\n")
    return directory


def _replay_kwargs(lanl_dataset, **extra):
    kwargs = dict(
        bootstrap_files=1,
        pattern="dns-*.log",
        internal_suffixes=lanl_dataset.internal_suffixes,
        server_ips=lanl_dataset.server_ips,
        batch_size=250,
    )
    kwargs.update(extra)
    return kwargs


# ---------------------------------------------------------------------------
# Batch parity
# ---------------------------------------------------------------------------

@pytest.mark.parity
class TestBatchParity:
    def test_replay_matches_batch_runner(self, log_dir, lanl_dataset):
        batch = run_directory(
            log_dir,
            bootstrap_files=1,
            pattern="dns-*.log",
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        stream = replay_directory(log_dir, **_replay_kwargs(lanl_dataset))
        assert len(stream.reports) == len(batch) == 2
        for got, want in zip(stream.reports, batch):
            assert got.records == want.records
            assert got.rare_domains == want.rare_domains
            assert got.cc_domains == want.cc_domains
            assert got.detected == want.detected

    def test_replay_detects_campaigns(self, log_dir, lanl_dataset):
        stream = replay_directory(log_dir, **_replay_kwargs(lanl_dataset))
        for report, march_date in zip(stream.reports, (2, 3)):
            truth = lanl_dataset.campaign_for_date(march_date)
            assert set(truth.cc_domains) <= report.cc_domains
            assert set(truth.malicious_domains) <= set(report.detected)

    def test_batch_size_does_not_change_detections(self, log_dir, lanl_dataset):
        small = replay_directory(
            log_dir, **_replay_kwargs(lanl_dataset, batch_size=37)
        )
        large = replay_directory(
            log_dir, **_replay_kwargs(lanl_dataset, batch_size=5000)
        )
        for a, b in zip(small.reports, large.reports):
            assert a.detected == b.detected
            assert a.rare_domains == b.rare_domains

    def test_intra_day_updates_converge_to_day_report(self, log_dir, lanl_dataset):
        updates = []
        stream = replay_directory(
            log_dir, on_update=updates.append, **_replay_kwargs(lanl_dataset)
        )
        # The last scoring round of each day sees the full window, so
        # its detections agree with the end-of-day (batch-parity) pass.
        by_day = {}
        for update in updates:
            by_day[update.day] = update
        for report in stream.reports:
            final = by_day[report.day]
            assert set(final.detected) == set(report.detected)


# ---------------------------------------------------------------------------
# Checkpoint / restore
# ---------------------------------------------------------------------------

class TestCheckpointRestore:
    def test_midday_restore_resumes_to_identical_state(
        self, log_dir, lanl_dataset, tmp_path
    ):
        kwargs = _replay_kwargs(lanl_dataset)
        full = replay_directory(log_dir, **kwargs)

        ckpt = tmp_path / "ckpt.json"
        first = replay_directory(
            log_dir, checkpoint_path=ckpt, max_batches=40, **kwargs
        )
        assert first.interrupted
        second = replay_directory(
            log_dir, checkpoint_path=ckpt, resume=True, **kwargs
        )
        combined = first.reports + second.reports
        assert [r.day for r in combined] == [r.day for r in full.reports]
        for got, want in zip(combined, full.reports):
            assert got.records == want.records
            assert got.rare_domains == want.rare_domains
            assert got.cc_domains == want.cc_domains
            assert got.detected == want.detected

    def test_snapshot_round_trip_preserves_window(self, lanl_dataset, tmp_path):
        detector = StreamingDetector(
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        records = lanl_dataset.day_records(1)
        half = len(records) // 2
        detector.submit_raw(records[:half])
        detector.poll()
        detector.score()

        path = tmp_path / "snap.json"
        save_streaming(detector, path)
        restored = load_streaming(path)

        assert restored.window.day == detector.window.day
        assert restored.window.events_today == detector.window.events_today
        assert restored.window.rare == detector.window.rare
        assert (
            restored.window.traffic.timestamps
            == detector.window.traffic.timestamps
        )
        assert restored.history._first_seen == detector.history._first_seen
        if detector.prior is not None:
            assert restored.prior.domains == detector.prior.domains
            assert restored.prior.hosts == detector.prior.hosts

        # Both finish the day identically.
        detector.submit_raw(records[half:])
        detector.poll()
        restored.submit_raw(records[half:])
        restored.poll()
        assert detector.rollover().detected == restored.rollover().detected

    def test_rejects_wrong_kind(self, tmp_path):
        from repro.state import StateError, restore_streaming

        with pytest.raises(StateError):
            restore_streaming({"version": 1, "kind": "detector"})

    def test_save_is_atomic(self, tmp_path):
        detector = StreamingDetector()
        path = tmp_path / "ckpt.json"
        save_streaming(detector, path)
        good = path.read_text()
        # A crashed write leaves only the temp file; the checkpoint
        # itself must still hold the previous good document.
        assert not (tmp_path / "ckpt.json.tmp").exists()
        detector.ingest([_conn("h1", "d.c1", 5.0)])
        save_streaming(detector, path)
        assert path.read_text() != good
        assert load_streaming(path).window.events_today == 1

    def test_refuses_snapshot_with_queued_events(self, tmp_path):
        from repro.state import StateError

        detector = StreamingDetector()
        detector.submit([_conn("h1", "d.c1", 5.0)])  # published, not polled
        with pytest.raises(StateError, match="queued"):
            save_streaming(detector, tmp_path / "ckpt.json")
        detector.poll()
        save_streaming(detector, tmp_path / "ckpt.json")


# ---------------------------------------------------------------------------
# Day rollover
# ---------------------------------------------------------------------------

class TestRollover:
    def test_commits_histories_exactly_once(self, log_dir, lanl_dataset):
        detector = StreamingDetector(
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        with (log_dir / "dns-march-01.log").open() as handle:
            from repro.logs import parse_dns_log

            detector.submit_raw(parse_dns_log(handle))
        detector.poll()
        domains_today = set(detector.window.traffic.hosts_by_domain)
        assert all(detector.history.is_new(d) for d in domains_today)

        detector.rollover(detect=False)
        assert detector.history.committed_days == frozenset({0})
        assert not any(detector.history.is_new(d) for d in domains_today)
        sizes = len(detector.history)

        # A second rollover (empty day) must not re-stage or re-commit
        # day 0's observations.
        detector.rollover(detect=False)
        assert len(detector.history) == sizes
        assert detector.history.committed_days == frozenset({0, 1})

    def test_rollover_resets_window_and_beliefs(self, lanl_dataset):
        detector = StreamingDetector(
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        detector.submit_raw(lanl_dataset.day_records(1))
        detector.poll()
        detector.score()
        detector.rollover()
        assert detector.window.events_today == 0
        assert detector.window.rare == set()
        assert detector.graph.domain_count == 0
        assert detector.prior is None

    def test_history_matches_batch_after_replay(self, log_dir, lanl_dataset):
        kwargs = _replay_kwargs(lanl_dataset)
        from repro.runner import DnsLogRunner

        runner = DnsLogRunner(
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        paths = sorted(log_dir.glob("dns-*.log"))
        runner.bootstrap(paths[:1])
        for path in paths[1:]:
            runner.process(path)

        detector = StreamingDetector(
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        detector.bootstrap(paths[:1])
        for path in paths[1:]:
            with path.open() as handle:
                from repro.logs import parse_dns_log

                detector.submit_raw(parse_dns_log(handle))
            detector.poll()
            detector.rollover()

        assert detector.history._first_seen == runner.history._first_seen
        assert detector.history.committed_days == runner.history.committed_days


# ---------------------------------------------------------------------------
# Warm-start belief propagation
# ---------------------------------------------------------------------------

def _toy_scorers():
    scores = {"d2": 0.6, "d3": 0.5, "d4": 0.1}

    def detect_cc(domain):
        return domain == "d1"

    def similarity(domain, malicious):
        return scores.get(domain, 0.0)

    return detect_cc, similarity


class TestWarmStartBP:
    def test_warm_reaches_cold_fixed_point(self):
        detect_cc, similarity = _toy_scorers()
        config = LANL_CONFIG
        warm_cfg = WarmStartConfig(full_recompute_fraction=0.95)

        # Round 1: partial graph.
        graph = IncrementalGraph()
        graph.add_edge("h1", "d1")
        graph.add_edge("h1", "d2")
        prior, mode = warm_start_belief_propagation(
            {"h1"}, {"d1"},
            graph=graph, detect_cc=detect_cc, similarity_score=similarity,
            config=config,
        )
        assert mode == "full"
        assert prior.domains == {"d1", "d2"}

        # New events arrive: h2 visits d2 and d3, h3 visits d4.
        graph.add_edge("h2", "d2")
        graph.add_edge("h2", "d3")
        graph.add_edge("h3", "d4")
        warm_result, mode = warm_start_belief_propagation(
            {"h1"}, {"d1"},
            graph=graph, detect_cc=detect_cc, similarity_score=similarity,
            config=config, prior=prior, warm=warm_cfg,
        )
        assert mode == "warm"

        cold_result = belief_propagation(
            {"h1"}, {"d1"},
            dom_host=graph.dom_host, host_rdom=graph.host_rdom,
            detect_cc=detect_cc, similarity_score=similarity,
            config=config.belief_propagation,
        )
        assert warm_result.domains == cold_result.domains
        assert warm_result.hosts == cold_result.hosts
        # Same marginals: each non-seed domain keeps its labeling score.
        warm_scores = {d.domain: d.score for d in warm_result.detections}
        cold_scores = {d.domain: d.score for d in cold_result.detections}
        for domain in warm_result.domains - {"d1"}:
            assert warm_scores[domain] == pytest.approx(
                cold_scores[domain], abs=1e-9
            )

    def test_warm_spends_fewer_iterations(self):
        detect_cc, similarity = _toy_scorers()
        graph = IncrementalGraph()
        graph.add_edge("h1", "d1")
        graph.add_edge("h1", "d2")
        prior, _ = warm_start_belief_propagation(
            {"h1"}, {"d1"},
            graph=graph, detect_cc=detect_cc, similarity_score=similarity,
            config=LANL_CONFIG,
        )
        graph.clear_dirty()
        graph.add_edge("h2", "d2")
        warm_result, mode = warm_start_belief_propagation(
            {"h1"}, {"d1"},
            graph=graph, detect_cc=detect_cc, similarity_score=similarity,
            config=LANL_CONFIG, prior=prior,
            warm=WarmStartConfig(full_recompute_fraction=0.95),
        )
        assert mode == "warm"
        # d2 was already labeled in the prior; only the no-op closing
        # iteration runs, instead of re-deriving every label.
        assert warm_result.iterations < prior.iterations + 1 or (
            warm_result.iterations <= prior.iterations
        )

    def test_falls_back_when_dirty_fraction_large(self):
        detect_cc, similarity = _toy_scorers()
        graph = IncrementalGraph()
        graph.add_edge("h1", "d1")
        prior, _ = warm_start_belief_propagation(
            {"h1"}, {"d1"},
            graph=graph, detect_cc=detect_cc, similarity_score=similarity,
            config=LANL_CONFIG,
        )
        graph.add_edge("h1", "d2")  # 1 of 2 domains dirty = 0.5 > 0.25
        _, mode = warm_start_belief_propagation(
            {"h1"}, {"d1"},
            graph=graph, detect_cc=detect_cc, similarity_score=similarity,
            config=LANL_CONFIG, prior=prior,
        )
        assert mode == "full"

    def test_cc_verdict_retraction_drops_prior(self):
        """A prior C&C belief that stops looking automated must not
        survive as a warm-start seed (verdicts are not monotone)."""
        detector = StreamingDetector(
            warm=WarmStartConfig(full_recompute_fraction=0.99)
        )
        # Two hosts beaconing in sync at 600 s: C&C by the multi-host
        # heuristic.  Background chatter keeps the dirty fraction low.
        beacons = [
            _conn(host, "evil.c1", 600.0 * i)
            for i in range(8) for host in ("h1", "h2")
        ]
        noise = [
            _conn("n1", f"bg{i}.c1", 100.0 + i) for i in range(30)
        ]
        detector.ingest(beacons + noise)
        first = detector.score()
        assert "evil.c1" in first.detected
        assert detector.prior is not None

        # Irregular events break the periodicity for both hosts.
        jitter = [
            _conn(host, "evil.c1", t)
            for t in (130.0, 655.0, 1790.0, 2233.0, 2904.0, 3111.0,
                      3517.0, 4020.0, 4444.0)
            for host in ("h1", "h2")
        ]
        detector.ingest(jitter)
        second = detector.score()
        assert "evil.c1" not in second.detected
        # Matches a cold detector over the identical traffic.
        cold = StreamingDetector()
        cold.ingest(beacons + noise + jitter)
        assert set(second.detected) == set(cold.score().detected)

    def test_falls_back_on_belief_retraction(self):
        detect_cc, similarity = _toy_scorers()
        graph = IncrementalGraph()
        graph.add_edge("h1", "d1")
        graph.add_edge("h1", "d2")
        for _ in range(20):
            graph.add_edge(f"x{_}", "d4")
        prior, _ = warm_start_belief_propagation(
            {"h1"}, {"d1"},
            graph=graph, detect_cc=detect_cc, similarity_score=similarity,
            config=LANL_CONFIG,
        )
        assert "d2" in prior.domains
        graph.remove_domain("d2")  # d2 crossed the popularity threshold
        _, mode = warm_start_belief_propagation(
            {"h1"}, {"d1"},
            graph=graph, detect_cc=detect_cc, similarity_score=similarity,
            config=LANL_CONFIG, prior=prior,
            warm=WarmStartConfig(full_recompute_fraction=0.95),
        )
        assert mode == "full"


# ---------------------------------------------------------------------------
# Substrates
# ---------------------------------------------------------------------------

def _conn(host, domain, ts=0.0):
    return Connection(timestamp=ts, host=host, domain=domain)


class TestEventBus:
    def test_sharding_is_stable_and_total(self):
        bus = EventBus(n_shards=4)
        events = [_conn(f"host{i}", "dom.c1", float(i)) for i in range(100)]
        assert bus.publish(events) == 100
        assert len(bus) == 100
        assert sum(bus.shard_sizes()) == 100
        for i in range(100):
            assert shard_of(f"host{i}", 4) == shard_of(f"host{i}", 4)

    def test_same_host_same_shard(self):
        bus = EventBus(n_shards=8)
        bus.publish([_conn("alpha", f"d{i}.c1", float(i)) for i in range(10)])
        sizes = bus.shard_sizes()
        assert sorted(sizes, reverse=True)[0] == 10

    def test_drain_round_robin_empties_all(self):
        bus = EventBus(n_shards=3)
        bus.publish([_conn(f"h{i}", "d.c1", float(i)) for i in range(30)])
        first = bus.drain(max_events=7)
        rest = bus.drain()
        assert len(first) == 7
        assert len(rest) == 23
        assert len(bus) == 0

    def test_micro_batches(self):
        batches = list(micro_batches(iter(range(10)), 4))
        assert [len(b) for b in batches] == [4, 4, 2]
        with pytest.raises(ValueError):
            list(micro_batches(iter(range(3)), 0))

    def test_replay_rejects_nonpositive_intervals(self, tmp_path):
        with pytest.raises(ValueError, match="score_every"):
            replay_directory(tmp_path, bootstrap_files=0, score_every=0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            replay_directory(tmp_path, bootstrap_files=0, checkpoint_every=0)


class TestSeriesVerdictCache:
    """Period-aware verdict caching must be invisible in outcomes."""

    def _cache(self):
        from repro.streaming.verdicts import SeriesVerdictCache
        from repro.timing import AutomationDetector

        detector = AutomationDetector()
        return SeriesVerdictCache(detector), detector

    def test_incremental_matches_full_recompute(self):
        cache, detector = self._cache()
        # A beacon series with jitter, plus irregular noise, appended
        # in chunks: the cached verdict must always match a fresh
        # test_series over the whole prefix.
        import random

        rng = random.Random(5)
        times: list[float] = []
        t = 0.0
        for _ in range(60):
            t += 600.0 + rng.uniform(-3.0, 3.0)
            times.append(t)
        for burst in (7.0, 13.0, 29.0, 111.0, 222.0):
            times.append(t + burst)
        times.sort()

        series: list[float] = []
        for start in range(0, len(times), 7):
            chunk = times[start:start + 7]
            series.extend(chunk)
            got = cache.test("h", "d", sorted(series), chunk)
            want = detector.test_series("h", "d", sorted(series))
            assert got.automated == want.automated
            assert got.period == want.period
            assert got.connections == want.connections

    def test_on_period_beacons_skip(self):
        cache, detector = self._cache()
        times = [600.0 * i for i in range(1, 11)]
        first = cache.test("h", "d", times, times)
        assert first.automated
        assert cache.stats.full_tests == 1
        extended = times + [600.0 * i for i in range(11, 16)]
        second = cache.test("h", "d", extended, extended[10:])
        assert second.automated
        assert second.period == first.period
        assert second.connections == 15
        assert cache.stats.periodic_skips == 1
        assert cache.stats.incremental_tests == 0

    def test_short_series_skip_histogram(self):
        cache, detector = self._cache()
        verdict = cache.test("h", "d", [1.0, 2.0], [1.0, 2.0])
        assert not verdict.automated
        assert cache.stats.short_skips == 1
        assert cache.stats.full_tests == 0

    def test_out_of_order_arrival_falls_back_to_full(self):
        cache, detector = self._cache()
        times = [600.0 * i for i in range(1, 9)]
        cache.test("h", "d", times, times)
        # A late event lands in the *middle* of the series: the cached
        # clusters no longer describe the interval sequence.
        late = 900.0
        full = sorted(times + [late])
        got = cache.test("h", "d", full, [late])
        want = detector.test_series("h", "d", full)
        assert cache.stats.full_tests == 2
        assert got.automated == want.automated
        assert got.divergence == pytest.approx(want.divergence)

    def test_streaming_counters_move_and_parity_holds(self, lanl_dataset):
        from repro.logs.normalize import normalize_dns_records

        detector = StreamingDetector(
            internal_suffixes=lanl_dataset.internal_suffixes,
            server_ips=lanl_dataset.server_ips,
        )
        detector.submit_raw(lanl_dataset.day_records(1))
        detector.poll()
        detector.rollover(detect=False)
        events = list(normalize_dns_records(
            detector.funnel.reduce(lanl_dataset.day_records(2)), fold_level=3
        ))
        for batch in micro_batches(iter(events), 250):
            detector.ingest(batch)
            detector.score()
        final = detector.score()
        stats = detector.verdict_stats
        assert stats.periodic_skips > 0
        assert stats.short_skips > 0
        report = detector.rollover()
        assert set(final.detected) == set(report.detected)


class TestRareDomainTracker:
    def test_matches_batch_extraction_incrementally(self):
        history = DestinationHistory()
        history.bootstrap(["old.c1"])
        traffic = DailyTraffic(0)
        tracker = RareDomainTracker(history, unpopular_max_hosts=3)
        events = (
            [_conn("h1", "old.c1"), _conn("h1", "new.c1")]
            + [_conn(f"h{i}", "busy.c1") for i in range(5)]
            + [_conn("h2", "new.c1")]
        )
        for conn in events:
            traffic.ingest([conn])
            tracker.update(
                conn.domain, len(traffic.hosts_by_domain[conn.domain])
            )
            assert tracker.rare == extract_rare_domains(
                traffic, history, unpopular_max_hosts=3
            )

    def test_popular_domain_never_returns(self):
        history = DestinationHistory()
        tracker = RareDomainTracker(history, unpopular_max_hosts=2)
        assert tracker.update("d.c1", 1) == +1
        assert tracker.update("d.c1", 2) == -1
        assert tracker.update("d.c1", 2) == 0
        assert "d.c1" not in tracker.rare


class TestWindowedAggregator:
    def test_window_equals_bulk_aggregation(self, lanl_dataset):
        from repro.logs.normalize import normalize_dns_records
        from repro.logs.reduction import ReductionFunnel

        funnel = ReductionFunnel(
            lanl_dataset.internal_suffixes,
            lanl_dataset.server_ips,
            fold_level=3,
        )
        conns = list(
            normalize_dns_records(
                funnel.reduce(lanl_dataset.day_records(1)), fold_level=3
            )
        )
        bulk = DailyTraffic(0)
        bulk.ingest(conns)
        bulk.finalize()

        window = WindowedAggregator(0, DestinationHistory())
        for start in range(0, len(conns), 101):
            window.ingest(conns[start:start + 101])
        window.traffic.finalize()
        assert window.traffic.timestamps == bulk.timestamps
        assert window.traffic.hosts_by_domain == bulk.hosts_by_domain
        assert window.events_today == len(conns)

    def test_drain_changes_clears(self):
        window = WindowedAggregator(0, DestinationHistory())
        window.ingest([_conn("h1", "d.c1")])
        dirty, flips = window.drain_changes()
        assert dirty == {("h1", "d.c1")}
        assert flips == {"d.c1"}
        assert window.drain_changes() == (set(), set())


class TestIncrementalGraph:
    def test_remove_domain_cleans_both_maps(self):
        graph = IncrementalGraph()
        graph.add_edge("h1", "d1")
        graph.add_edge("h1", "d2")
        graph.remove_domain("d1")
        assert "d1" not in graph.dom_host
        assert graph.host_rdom["h1"] == {"d2"}
        graph.remove_domain("d2")
        assert graph.host_rdom == {}

    def test_from_traffic_restricts_to_rare(self):
        traffic = DailyTraffic(0)
        traffic.ingest([_conn("h1", "d1"), _conn("h2", "d2")])
        graph = IncrementalGraph.from_traffic(traffic, rare={"d1"})
        assert set(graph.dom_host) == {"d1"}
        assert graph.host_rdom == {"h1": {"d1"}}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestStreamCommand:
    def test_interrupt_and_resume_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        logs = tmp_path / "logs"
        assert main([
            "generate", str(logs), "--hosts", "40", "--days", "2",
        ]) == 0
        capsys.readouterr()

        ckpt = tmp_path / "ckpt.json"
        interrupted = main([
            "stream", str(logs), "--bootstrap-files", "1",
            "--internal-suffix", "int.c0",
            "--batch-size", "200",
            "--checkpoint", str(ckpt), "--max-batches", "5",
        ])
        out = capsys.readouterr().out
        assert interrupted == 3
        assert "interrupted after 5 micro-batches" in out
        assert ckpt.exists()

        resumed = main([
            "stream", str(logs), "--bootstrap-files", "1",
            "--internal-suffix", "int.c0",
            "--batch-size", "200",
            "--checkpoint", str(ckpt), "--resume",
        ])
        out = capsys.readouterr().out
        assert resumed == 0
        assert "day 1:" in out

    def test_stream_matches_run_command(self, tmp_path, capsys):
        from repro.cli import main

        logs = tmp_path / "logs"
        main(["generate", str(logs), "--hosts", "40", "--days", "2"])
        capsys.readouterr()

        main(["run", str(logs), "--bootstrap-files", "1",
              "--internal-suffix", "int.c0"])
        run_out = capsys.readouterr().out
        main(["stream", str(logs), "--bootstrap-files", "1",
              "--internal-suffix", "int.c0"])
        stream_out = capsys.readouterr().out
        # Identical detection suffix: "N rare, C&C=..., detected=..."
        run_tail = [line.split(" records, ")[1]
                    for line in run_out.splitlines() if " records, " in line]
        stream_tail = [line.split(" records, ")[1]
                       for line in stream_out.splitlines() if " records, " in line]
        assert run_tail == stream_tail


# ---------------------------------------------------------------------------
# Enterprise (proxy-path) streaming
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def trained_enterprise(enterprise_dataset):
    """The batch pipeline trained on the bootstrap month (shared)."""
    from repro.core import EnterpriseDetector

    detector = EnterpriseDetector(whois=enterprise_dataset.whois)
    detector.train(
        enterprise_dataset.day_batches(
            0, enterprise_dataset.config.bootstrap_days
        ),
        enterprise_dataset.build_virustotal(),
    )
    return detector


@pytest.fixture(scope="module")
def enterprise_layout(enterprise_dataset, tmp_path_factory) -> Path:
    """An on-disk enterprise layout (proxy logs + model.json + whois)."""
    from repro.synthetic import write_enterprise_layout

    directory = tmp_path_factory.mktemp("entlayout")
    return write_enterprise_layout(enterprise_dataset, directory, days=3)


def _enterprise_pair(trained_enterprise):
    """Independent batch/stream copies of the same trained system."""
    import copy

    from repro.streaming import StreamingEnterpriseDetector

    batch = copy.deepcopy(trained_enterprise)
    stream = StreamingEnterpriseDetector(copy.deepcopy(trained_enterprise))
    return batch, stream


@pytest.mark.parity
class TestEnterpriseBatchParity:
    def test_rollover_matches_process_day(
        self, trained_enterprise, enterprise_dataset
    ):
        batch, stream = _enterprise_pair(trained_enterprise)
        first = enterprise_dataset.config.bootstrap_days
        for day in range(first, first + 3):
            conns = enterprise_dataset.day_connections(day)
            want = batch.process_day(day, conns)
            stream.ingest(conns)
            stream.score()  # intra-day rounds must not skew the close
            report = stream.rollover()
            assert report.day == day
            assert report.rare_domains == want.rare_domains
            assert report.cc_domains == want.cc_domain_names
            assert set(report.detected) == want.all_detected_domains()
            assert report.day_result.no_hint is not None or not want.cc_domains

    def test_micro_batch_size_irrelevant(
        self, trained_enterprise, enterprise_dataset
    ):
        from repro.streaming import micro_batches

        _, small = _enterprise_pair(trained_enterprise)
        _, large = _enterprise_pair(trained_enterprise)
        day = enterprise_dataset.config.bootstrap_days
        conns = enterprise_dataset.day_connections(day)
        for batch in micro_batches(iter(conns), 97):
            small.ingest(batch)
            small.score()
        large.ingest(conns)
        assert small.rollover().detected == large.rollover().detected

    def test_final_scoring_round_matches_rollover(
        self, trained_enterprise, enterprise_dataset
    ):
        _, stream = _enterprise_pair(trained_enterprise)
        day = enterprise_dataset.config.bootstrap_days + 1
        prev = enterprise_dataset.day_connections(day - 1)
        stream.ingest(prev)
        stream.rollover(detect=False)
        stream.ingest(enterprise_dataset.day_connections(day))
        update = stream.score()
        report = stream.rollover()
        # No SOC hints and no intel: the last intra-day round saw the
        # full window, so it already equals the end-of-day close.
        assert set(update.detected) == set(report.detected)

    def test_requires_trained_detector(self):
        from repro.core import EnterpriseDetector
        from repro.streaming import StreamingEnterpriseDetector

        with pytest.raises(RuntimeError, match="trained"):
            StreamingEnterpriseDetector(EnterpriseDetector())


class TestEnterpriseCheckpoint:
    def test_midday_restore_finishes_identically(
        self, trained_enterprise, enterprise_dataset, tmp_path
    ):
        from repro.state import load_streaming_enterprise, save_streaming_enterprise

        batch, stream = _enterprise_pair(trained_enterprise)
        day = enterprise_dataset.config.bootstrap_days
        conns = enterprise_dataset.day_connections(day)
        want = batch.process_day(day, conns)

        half = len(conns) // 2
        stream.ingest(conns[:half])
        stream.score()
        path = tmp_path / "ent.json"
        save_streaming_enterprise(stream, path)
        restored = load_streaming_enterprise(
            path, whois=enterprise_dataset.whois
        )
        assert restored.window.events_today == stream.window.events_today
        assert restored.window.rare == stream.window.rare

        restored.ingest(conns[half:])
        report = restored.rollover()
        assert set(report.detected) == want.all_detected_domains()

    def test_restore_resumes_whois_imputation_counters(
        self, trained_enterprise, tmp_path
    ):
        from repro.state import load_streaming_enterprise, save_streaming_enterprise

        _, stream = _enterprise_pair(trained_enterprise)
        whois = stream.batch.extractor.whois
        path = tmp_path / "ent.json"
        save_streaming_enterprise(stream, path)
        restored = load_streaming_enterprise(path, whois=None)
        impute = restored.batch.extractor.whois
        assert impute._observed == whois._observed
        assert impute._age_sum == pytest.approx(whois._age_sum)

    def test_refuses_queued_events(self, trained_enterprise, tmp_path):
        from repro.state import StateError, save_streaming_enterprise

        _, stream = _enterprise_pair(trained_enterprise)
        stream.submit([_conn("h1", "d.com", 5.0)])
        with pytest.raises(StateError, match="queued"):
            save_streaming_enterprise(stream, tmp_path / "x.json")

    def test_rejects_wrong_kind(self):
        from repro.state import StateError, restore_streaming_enterprise

        with pytest.raises(StateError, match="streaming-enterprise"):
            restore_streaming_enterprise({"version": 1, "kind": "streaming"})


class TestEnterpriseIntelSeeding:
    def test_intel_domain_seeds_rollover(
        self, trained_enterprise, enterprise_dataset
    ):
        batch, stream = _enterprise_pair(trained_enterprise)
        day = enterprise_dataset.config.bootstrap_days
        conns = enterprise_dataset.day_connections(day)
        want = batch.process_day(day, conns)
        undetected_rare = sorted(
            want.rare_domains - want.all_detected_domains()
        )
        assert undetected_rare, "world has no undetected rare domain"
        target = undetected_rare[0]

        stream.ingest(conns)
        report = stream.rollover(intel_domains={target, "absent.example"})
        assert target in report.intel_seeded
        assert "absent.example" not in report.intel_seeded
        assert target in report.detected
        assert set(report.detected) >= want.all_detected_domains()


class TestEnterpriseReplay:
    def test_replay_interrupt_resume_parity(
        self, enterprise_layout, tmp_path
    ):
        from repro.streaming import replay_enterprise_directory

        kwargs = dict(
            model_state=enterprise_layout / "model.json",
            whois_path=enterprise_layout / "whois.json",
            bootstrap_files=0,
            batch_size=400,
        )
        full = replay_enterprise_directory(enterprise_layout, **kwargs)
        assert len(full.reports) == 3

        ckpt = tmp_path / "ckpt.json"
        first = replay_enterprise_directory(
            enterprise_layout, checkpoint_path=ckpt, max_batches=7, **kwargs
        )
        assert first.interrupted
        second = replay_enterprise_directory(
            enterprise_layout, checkpoint_path=ckpt, resume=True, **kwargs
        )
        combined = first.reports + second.reports
        assert [r.day for r in combined] == [r.day for r in full.reports]
        for got, want in zip(combined, full.reports):
            assert got.rare_domains == want.rare_domains
            assert got.cc_domains == want.cc_domains
            assert got.detected == want.detected

    def test_replay_requires_model(self, enterprise_layout):
        from repro.streaming import replay_enterprise_directory

        with pytest.raises(Exception):
            replay_enterprise_directory(
                enterprise_layout,
                model_state=enterprise_layout / "absent.json",
                bootstrap_files=0,
            )
