"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import DetectionCounts, score_detections
from repro.features import fit_linear_model, normalize_age, normalize_validity
from repro.logs.domains import fold_domain
from repro.profiling import DailyTraffic, DestinationHistory
from repro.synthetic import (
    CAMPAIGN_NAMES,
    AdversarialCampaignSpec,
    WorldView,
    campaign_connections,
    realize_campaign,
)
from repro.timing import (
    build_histogram,
    divergence_from_periodic,
    intervals,
    jeffrey_divergence,
    l1_distance,
    periodic_reference,
)

positive_floats = st.floats(
    min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
)
interval_lists = st.lists(positive_floats, min_size=1, max_size=60)
bin_widths = st.floats(min_value=0.01, max_value=1e4)


class TestHistogramProperties:
    @given(interval_lists, bin_widths)
    def test_total_equals_input_length(self, values, width):
        hist = build_histogram(values, width)
        assert hist.total == len(values)
        assert sum(b.count for b in hist.bins) == len(values)

    @given(interval_lists, bin_widths)
    def test_frequencies_sum_to_one(self, values, width):
        hist = build_histogram(values, width)
        assert math.isclose(sum(b.frequency for b in hist.bins), 1.0)

    @given(interval_lists, bin_widths)
    def test_every_hub_is_an_input_value(self, values, width):
        hist = build_histogram(values, width)
        hubs = {b.hub for b in hist.bins}
        assert hubs <= set(values)

    @given(interval_lists, bin_widths)
    def test_hubs_are_pairwise_separated(self, values, width):
        """Distinct cluster hubs must be more than W apart -- otherwise
        the second hub would have joined the first cluster."""
        hist = build_histogram(values, width)
        hubs = [b.hub for b in hist.bins]
        for i, hub_a in enumerate(hubs):
            for hub_b in hubs[i + 1:]:
                assert abs(hub_a - hub_b) > width

    @given(st.floats(min_value=1.0, max_value=1e5), st.integers(2, 50))
    def test_constant_intervals_single_bin(self, value, count):
        hist = build_histogram([value] * count, 1.0)
        assert len(hist.bins) == 1
        assert hist.period == value

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e7, allow_nan=False),
            min_size=2, max_size=50,
        )
    )
    def test_intervals_nonnegative_for_sorted_input(self, times):
        times.sort()
        assert all(gap >= 0 for gap in intervals(times))


class TestDivergenceProperties:
    @given(interval_lists, bin_widths)
    def test_jeffrey_nonnegative_and_bounded(self, values, width):
        hist = build_histogram(values, width)
        d = divergence_from_periodic(hist)
        assert -1e-12 <= d <= 2 * math.log(2) + 1e-9

    @given(interval_lists, bin_widths)
    def test_l1_bounded_by_two(self, values, width):
        hist = build_histogram(values, width)
        assert 0.0 <= divergence_from_periodic(hist, metric="l1") <= 2.0 + 1e-12

    @given(interval_lists, bin_widths)
    def test_self_reference_dominant_share_monotone(self, values, width):
        """Divergence from periodic is 0 iff a single bin holds all mass."""
        hist = build_histogram(values, width)
        d = divergence_from_periodic(hist)
        if len(hist.bins) == 1:
            assert math.isclose(d, 0.0, abs_tol=1e-12)
        else:
            assert d > 0.0

    @given(interval_lists, bin_widths)
    def test_jeffrey_symmetry_under_swap(self, values, width):
        """dJ(H, K) computed from aligned pairs is symmetric."""
        hist = build_histogram(values, width)
        ref = periodic_reference(hist)
        observed_as_ref = {b.hub: b.frequency for b in hist.bins}
        ref_as_hist = build_histogram(
            [hist.period], 1.0
        )  # single bin at the period with mass 1
        forward = jeffrey_divergence(hist, ref)
        backward = jeffrey_divergence(ref_as_hist, observed_as_ref)
        assert math.isclose(forward, backward, rel_tol=1e-9, abs_tol=1e-9)

    @given(interval_lists, bin_widths)
    def test_l1_triangle_with_zero(self, values, width):
        hist = build_histogram(values, width)
        assert l1_distance(hist, {b.hub: b.frequency for b in hist.bins}) == 0.0


class TestHistoryProperties:
    @given(
        st.lists(
            st.tuples(st.text(alphabet="abc.", min_size=1, max_size=8),
                      st.integers(0, 30)),
            max_size=100,
        )
    )
    def test_history_grows_monotonically(self, observations):
        history = DestinationHistory()
        sizes = []
        for domain, day in observations:
            history.stage(domain, day)
            history.commit_day(day)
            sizes.append(len(history))
        assert sizes == sorted(sizes)

    @given(st.lists(st.text(alphabet="abcxyz.", min_size=1, max_size=10), max_size=50))
    def test_committed_domains_never_new_again(self, domains):
        history = DestinationHistory()
        for domain in domains:
            history.stage(domain, 0)
        history.commit_day(0)
        assert all(not history.is_new(d) for d in domains)


class TestFoldProperties:
    domain_labels = st.lists(
        st.text(alphabet="abcdefghij0123456789", min_size=1, max_size=8),
        min_size=1, max_size=6,
    )

    @given(domain_labels, st.integers(1, 4))
    def test_fold_idempotent(self, labels, level):
        name = ".".join(labels)
        once = fold_domain(name, level)
        assert fold_domain(once, level) == once

    @given(domain_labels, st.integers(1, 4))
    def test_fold_result_label_count_bounded(self, labels, level):
        folded = fold_domain(".".join(labels), level)
        assert len(folded.split(".")) <= max(len(labels), level)

    @given(domain_labels, st.integers(1, 4))
    def test_fold_is_suffix(self, labels, level):
        name = ".".join(labels).lower()
        assert name.endswith(fold_domain(name, level))


class TestMetricsProperties:
    @given(
        st.sets(st.text(alphabet="abcd", min_size=1, max_size=4), max_size=20),
        st.sets(st.text(alphabet="abcd", min_size=1, max_size=4), max_size=20),
    )
    def test_rates_are_probabilities(self, detected, truth):
        counts = score_detections(detected, truth)
        assert 0.0 <= counts.tdr <= 1.0
        assert 0.0 <= counts.fdr <= 1.0
        assert 0.0 <= counts.fnr <= 1.0
        if detected:
            assert math.isclose(counts.tdr + counts.fdr, 1.0)

    @given(
        st.sets(st.text(alphabet="abcd", min_size=1, max_size=4), max_size=20),
        st.sets(st.text(alphabet="abcd", min_size=1, max_size=4), max_size=20),
    )
    def test_counts_conserve_sets(self, detected, truth):
        counts = score_detections(detected, truth)
        assert counts.true_positives + counts.false_positives == len(detected)
        assert counts.true_positives + counts.false_negatives == len(truth)

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))
    def test_addition_componentwise(self, tp, fp, fn):
        a = DetectionCounts(tp, fp, fn)
        b = DetectionCounts(1, 2, 3)
        total = a + b
        assert total.true_positives == tp + 1
        assert total.false_positives == fp + 2
        assert total.false_negatives == fn + 3


class TestWhoisNormalizationProperties:
    @given(st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
    def test_age_in_unit_interval(self, days):
        assert 0.0 <= normalize_age(days) <= 1.0

    @given(st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
    def test_validity_in_unit_interval(self, days):
        assert 0.0 <= normalize_validity(days) <= 1.0

    @given(st.floats(min_value=0, max_value=364), st.floats(min_value=0.5, max_value=364))
    def test_age_monotone(self, base, delta):
        assert normalize_age(base + delta) >= normalize_age(base)


class TestRegressionProperties:
    @settings(max_examples=25)
    @given(
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
            min_size=5, max_size=40,
        )
    )
    def test_fitted_scores_finite(self, rows):
        matrix = [[a, b] for a, b in rows]
        labels = [a for a, _ in rows]
        model = fit_linear_model(("a", "b"), matrix, labels, ridge=0.01)
        for row in matrix:
            assert math.isfinite(model.score(row))

    @settings(max_examples=25)
    @given(st.floats(0.01, 10.0))
    def test_larger_ridge_never_grows_weights(self, ridge):
        rows = [[0.0], [0.0], [1.0], [1.0], [0.5]]
        labels = [0.0, 0.1, 0.9, 1.0, 0.5]
        small = fit_linear_model(("x",), rows, labels, ridge=ridge)
        large = fit_linear_model(("x",), rows, labels, ridge=ridge * 2)
        assert abs(large.weights[0]) <= abs(small.weights[0]) + 1e-12


# ---------------------------------------------------------------------------
# Adversarial campaign invariants
# ---------------------------------------------------------------------------

#: A tiny fixed world view: campaign realization only reads hosts and
#: the popular core, so properties need no generated dataset.
_CAMPAIGN_WORLD = WorldView(
    hosts=tuple(f"host{i:02d}.c0" for i in range(8)),
    popular_sites=tuple(
        (f"popular{i}.com", f"10.9.{i}.1") for i in range(6)
    ),
)

campaign_specs = st.builds(
    AdversarialCampaignSpec,
    campaign=st.sampled_from(CAMPAIGN_NAMES),
    strength=st.floats(0.0, 1.0, allow_nan=False),
    seed=st.integers(0, 2**32),
    start_day=st.integers(0, 40),
    duration_days=st.integers(1, 5),
    n_hosts=st.integers(1, 4),
)


class TestCampaignProperties:
    @settings(max_examples=40, deadline=None)
    @given(campaign_specs)
    def test_events_confined_to_active_days(self, spec):
        """No archetype, at any strength, may leak a single event
        outside its configured day range -- and every emitted
        timestamp lies inside its own day."""
        realized = realize_campaign(_CAMPAIGN_WORLD, spec)
        days = spec.active_days
        assert realized.day_visits(days.start - 1) == []
        assert realized.day_visits(days.stop) == []
        for day in days:
            for visit in realized.day_visits(day):
                assert day * 86_400.0 <= visit.timestamp < (day + 1) * 86_400.0
                assert visit.host in realized.hosts

    @settings(max_examples=40, deadline=None)
    @given(campaign_specs)
    def test_attacker_domains_never_collide_with_whitelist(self, spec):
        """Attacker-owned names stay disjoint from the benign popular
        core (the reduction whitelist) by construction; only fronted
        traffic -- which is not ground truth -- may touch it."""
        realized = realize_campaign(_CAMPAIGN_WORLD, spec)
        whitelist = {domain for domain, _ in _CAMPAIGN_WORLD.popular_sites}
        attacker = set(realized.attacker_domains)
        assert not attacker & whitelist
        assert realized.truth_domains() <= attacker
        for domain in attacker:
            assert domain.rpartition(".")[2] in ("ru", "info")

    @settings(max_examples=25, deadline=None)
    @given(campaign_specs, st.integers(1, 7))
    def test_chunked_ingest_matches_single_finalize(self, spec, chunks):
        """Feeding a day's campaign traffic to DailyTraffic in any
        chunking, with interleaved finalize calls, must aggregate to
        the same state as one ingest + finalize."""
        realized = realize_campaign(_CAMPAIGN_WORLD, spec)
        connections = campaign_connections(realized, spec.start_day)
        whole = DailyTraffic(spec.start_day)
        whole.ingest(connections)
        whole.finalize()

        piecewise = DailyTraffic(spec.start_day)
        size = max(1, len(connections) // chunks)
        for start in range(0, len(connections), size):
            piecewise.ingest(connections[start:start + size])
            piecewise.finalize()

        assert piecewise.hosts_by_domain == whole.hosts_by_domain
        assert piecewise.timestamps == whole.timestamps
        assert piecewise.resolved_ips == whole.resolved_ips
        assert piecewise.no_referer_hosts == whole.no_referer_hosts
